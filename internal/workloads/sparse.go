package workloads

import (
	"math/rand"

	"arraycomp/internal/runtime"
)

// Irregular (subscripted-subscript) workloads: the index arrays arrive
// as inputs, so none of their properties are provable statically — the
// compiler emits claim-conditional plans and a one-pass runtime
// verifier decides, per execution, whether the unchecked parallel fast
// path is admissible. These are the reproduction's stand-ins for the
// sparse/irregular kernels that motivated subscripted-subscript
// parallelization (Bhosale & Eigenmann): SpMV over CSR-ordered
// triples, data-dependent histogram binning, and neighbor gathers
// through an adjacency list.

// SpMVSrc is sparse matrix-vector multiply over CSR-ordered entries:
// entry k contributes v(k)·x(col(k)) to row row(k). With row verified
// monotone (CSR order) and in range, the accumulation parallelizes by
// sharding rows at entry boundaries; col needs only a range claim for
// the unchecked gather from x.
const SpMVSrc = `param n, nnz;
y = accumArray (+) 0.0 (1,n)
  [ row!(k) := v!(k) * x!(col!(k)) | k <- [1..nnz] ]`

// HistogramIdxSrc bins n samples through a data-dependent bucket
// array — the irregular cousin of HistogramSrc, whose bucket map is a
// closed-form expression.
const HistogramIdxSrc = `param n, b;
h = accumArray (+) 0.0 (1,b) [ bkt!(k) := 1.0 | k <- [1..n] ]`

// AdjGatherSrc gathers each vertex's neighbor value through an
// adjacency (edge-endpoint) array: a pure indirect read, needing only
// a range claim to run unchecked.
const AdjGatherSrc = `param n, m;
g = array (1,m) [ j := x!(adj!(j)) | j <- [1..m] ]`

// PermuteSrc scatters x through a permutation p: the untracked
// parallel store is sound only under verified injectivity (plus
// range), making it the smallest workload that exercises the
// injectivity verifier.
const PermuteSrc = `param n;
s = array (1,n) [ p!(i) := x!(i) | i <- [1..n] ]`

// SparseCase bundles one irregular workload instance.
type SparseCase struct {
	Params map[string]int64
	Inputs map[string]*runtime.Strict
}

func intArray(lo, hi int64, vals []int64) *runtime.Strict {
	a := runtime.NewStrict(runtime.NewBounds1(lo, hi))
	for i, v := range vals {
		a.Data[i] = float64(v)
	}
	return a
}

// CSRInputs builds a CSR-ordered sparse matrix with about avgDeg
// entries per row (row monotone non-decreasing, col uniform in 1..n)
// and a dense vector x. Deterministic in (n, avgDeg, seed).
func CSRInputs(n, avgDeg, seed int64) SparseCase {
	rng := rand.New(rand.NewSource(seed))
	var rows, cols []int64
	for i := int64(1); i <= n; i++ {
		deg := 1 + rng.Int63n(2*avgDeg-1)
		for d := int64(0); d < deg; d++ {
			rows = append(rows, i)
			cols = append(cols, 1+rng.Int63n(n))
		}
	}
	nnz := int64(len(rows))
	v := runtime.NewStrict(runtime.NewBounds1(1, nnz))
	for i := range v.Data {
		v.Data[i] = rng.Float64()
	}
	x := Vector(n, seed+1)
	return SparseCase{
		Params: map[string]int64{"n": n, "nnz": nnz},
		Inputs: map[string]*runtime.Strict{
			"row": intArray(1, nnz, rows),
			"col": intArray(1, nnz, cols),
			"v":   v,
			"x":   x,
		},
	}
}

// ShuffleRows returns a copy of a CSR case with its entries permuted
// into a random (non-CSR) order: the same matrix, but the row array is
// no longer monotone, so runtime verification fails and execution must
// fall back to the checked sequential path — with the same result.
func ShuffleRows(c SparseCase, seed int64) SparseCase {
	rng := rand.New(rand.NewSource(seed))
	nnz := c.Params["nnz"]
	perm := rng.Perm(int(nnz))
	out := SparseCase{Params: c.Params, Inputs: map[string]*runtime.Strict{"x": c.Inputs["x"]}}
	for _, name := range []string{"row", "col", "v"} {
		src := c.Inputs[name]
		dst := runtime.NewStrict(src.B)
		for i, p := range perm {
			dst.Data[i] = src.Data[p]
		}
		out.Inputs[name] = dst
	}
	return out
}

// HistogramIdxInputs builds n samples binned into b buckets. With
// sorted set, the bucket array is monotone (pre-bucketed samples), so
// the accumulation mono-shards; unsorted exercises the fallback.
func HistogramIdxInputs(n, b, seed int64, sorted bool) SparseCase {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = 1 + rng.Int63n(b)
	}
	if sorted {
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
	}
	return SparseCase{
		Params: map[string]int64{"n": n, "b": b},
		Inputs: map[string]*runtime.Strict{"bkt": intArray(1, n, vals)},
	}
}

// AdjInputs builds an m-edge adjacency-endpoint array over n vertices
// plus the vertex value vector.
func AdjInputs(n, m, seed int64) SparseCase {
	rng := rand.New(rand.NewSource(seed))
	adj := make([]int64, m)
	for i := range adj {
		adj[i] = 1 + rng.Int63n(n)
	}
	return SparseCase{
		Params: map[string]int64{"n": n, "m": m},
		Inputs: map[string]*runtime.Strict{
			"adj": intArray(1, m, adj),
			"x":   Vector(n, seed+1),
		},
	}
}

// PermuteInputs builds a random permutation of 1..n and the vector to
// scatter through it.
func PermuteInputs(n, seed int64) SparseCase {
	rng := rand.New(rand.NewSource(seed))
	p := make([]int64, n)
	for i, v := range rng.Perm(int(n)) {
		p[i] = int64(v) + 1
	}
	return SparseCase{
		Params: map[string]int64{"n": n},
		Inputs: map[string]*runtime.Strict{
			"p": intArray(1, n, p),
			"x": Vector(n, seed+1),
		},
	}
}

// --- hand-written baselines ---

// HandSpMV accumulates the CSR entries in order.
func HandSpMV(c SparseCase) *runtime.Strict {
	n := c.Params["n"]
	row, col := c.Inputs["row"], c.Inputs["col"]
	v, x := c.Inputs["v"], c.Inputs["x"]
	y := runtime.NewStrict(runtime.NewBounds1(1, n))
	for k := range row.Data {
		r := int64(row.Data[k])
		cI := int64(col.Data[k])
		y.Data[r-1] += v.Data[k] * x.Data[cI-1]
	}
	return y
}

// HandHistogramIdx counts samples per bucket.
func HandHistogramIdx(c SparseCase) *runtime.Strict {
	b := c.Params["b"]
	bkt := c.Inputs["bkt"]
	h := runtime.NewStrict(runtime.NewBounds1(1, b))
	for _, v := range bkt.Data {
		h.Data[int64(v)-1]++
	}
	return h
}

// HandAdjGather gathers neighbor values.
func HandAdjGather(c SparseCase) *runtime.Strict {
	m := c.Params["m"]
	adj, x := c.Inputs["adj"], c.Inputs["x"]
	g := runtime.NewStrict(runtime.NewBounds1(1, m))
	for j := range adj.Data {
		g.Data[j] = x.Data[int64(adj.Data[j])-1]
	}
	return g
}

// HandPermute scatters x through the permutation.
func HandPermute(c SparseCase) *runtime.Strict {
	p, x := c.Inputs["p"], c.Inputs["x"]
	s := runtime.NewStrict(x.B)
	for i := range p.Data {
		s.Data[int64(p.Data[i])-1] = x.Data[i]
	}
	return s
}
