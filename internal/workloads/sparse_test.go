package workloads

import (
	"testing"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/runtime"
)

func compileSparse(t *testing.T, src string, c SparseCase, opts core.Options) *core.Program {
	t.Helper()
	opts.InputBounds = map[string]analysis.ArrayBounds{}
	for name, a := range c.Inputs {
		opts.InputBounds[name] = analysis.ArrayBounds{Lo: a.B.Lo, Hi: a.B.Hi}
	}
	p, err := core.Compile(src, c.Params, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func parOpts() core.Options {
	return core.Options{Parallel: true, Workers: 4, Certify: true}
}

// TestSparseWorkloadsMatchHand cross-validates every irregular
// workload, compiled claim-conditional and run with a worker pool,
// against its hand-written baseline — on satisfying index arrays (the
// verifier admits the fast path) AND on violating ones (the verifier
// rejects, the checked fallback runs, the result is identical).
func TestSparseWorkloadsMatchHand(t *testing.T) {
	t.Run("spmv", func(t *testing.T) {
		c := CSRInputs(64, 4, 1)
		p := compileSparse(t, SpMVSrc, c, parOpts())
		got, err := p.Run(c.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandSpMV(c), 1e-12); err != nil {
			t.Fatal(err)
		}
		snap := p.IdxVerify.Snapshot()
		if snap.Verified == 0 {
			t.Errorf("CSR run never passed runtime verification: %+v", snap)
		}
		if snap.Failed != 0 {
			t.Errorf("CSR-ordered input failed verification: %+v", snap)
		}
	})

	t.Run("spmv-shuffled", func(t *testing.T) {
		c := ShuffleRows(CSRInputs(64, 4, 1), 2)
		p := compileSparse(t, SpMVSrc, c, parOpts())
		got, err := p.Run(c.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandSpMV(c), 1e-12); err != nil {
			t.Fatal(err)
		}
		if snap := p.IdxVerify.Snapshot(); snap.Failed == 0 {
			t.Errorf("shuffled rows never failed verification: %+v", snap)
		}
	})

	t.Run("histogram-sorted", func(t *testing.T) {
		c := HistogramIdxInputs(200, 16, 3, true)
		p := compileSparse(t, HistogramIdxSrc, c, parOpts())
		got, err := p.Run(c.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandHistogramIdx(c), 0); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("histogram-unsorted", func(t *testing.T) {
		c := HistogramIdxInputs(200, 16, 3, false)
		p := compileSparse(t, HistogramIdxSrc, c, parOpts())
		got, err := p.Run(c.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandHistogramIdx(c), 0); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("adjgather", func(t *testing.T) {
		c := AdjInputs(50, 300, 4)
		p := compileSparse(t, AdjGatherSrc, c, parOpts())
		got, err := p.Run(c.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandAdjGather(c), 0); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("permute", func(t *testing.T) {
		c := PermuteInputs(128, 5)
		p := compileSparse(t, PermuteSrc, c, parOpts())
		got, err := p.Run(c.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClose(got, HandPermute(c), 0); err != nil {
			t.Fatal(err)
		}
		if snap := p.IdxVerify.Snapshot(); snap.Verified == 0 {
			t.Errorf("permutation never passed verification: %+v", snap)
		}
	})
}

// TestSparseParallelMatchesSequential pins that the worker pool does
// not change any irregular workload's observable result (bitwise).
func TestSparseParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		src  string
		c    SparseCase
	}{
		{"spmv", SpMVSrc, CSRInputs(48, 3, 11)},
		{"histogram", HistogramIdxSrc, HistogramIdxInputs(150, 12, 12, true)},
		{"adjgather", AdjGatherSrc, AdjInputs(40, 200, 13)},
		{"permute", PermuteSrc, PermuteInputs(96, 14)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqP := compileSparse(t, tc.src, tc.c, core.Options{})
			parP := compileSparse(t, tc.src, tc.c, core.Options{Parallel: true, Workers: 4})
			clone := func() map[string]*runtime.Strict {
				m := map[string]*runtime.Strict{}
				for k, v := range tc.c.Inputs {
					m[k] = v.Clone()
				}
				return m
			}
			seq, err := seqP.Run(clone())
			if err != nil {
				t.Fatal(err)
			}
			par, err := parP.Run(clone())
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckClose(seq, par, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}
