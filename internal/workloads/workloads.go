// Package workloads holds the canonical benchmark programs of the
// reproduction — the paper's worked examples and the LINPACK/Livermore
// fragments its section 9 cites — together with hand-written Go
// implementations (the "Fortran" baselines the paper measures against)
// and naive persistent-update baselines.
package workloads

import (
	"fmt"
	"math/rand"

	"arraycomp/internal/runtime"
)

// --- program sources ---

// SquaresSrc is the introduction's vector of squares.
const SquaresSrc = `sq = array (1,n) [ i := i*i | i <- [1..n] ]`

// RecurrenceSrc is a first-order forward recurrence (flow edge (<)).
const RecurrenceSrc = `a = array (1,n)
  ([ 1 := 1.0 ] ++ [ i := 0.999 * a!(i-1) + 0.5 | i <- [2..n] ])`

// WavefrontSrc is the section 3 wavefront recurrence: north and west
// borders 1, interior the sum of N, NW, W neighbours.
const WavefrontSrc = `a = array ((1,1),(n,n))
  ([ (1,j) := 1.0 | j <- [1..n] ] ++
   [ (i,1) := 1.0 | i <- [2..n] ] ++
   [ (i,j) := 0.3 * a!(i-1,j) + 0.3 * a!(i,j-1) + 0.4 * a!(i-1,j-1)
     | i <- [2..n], j <- [2..n] ])`

// Example1Src is the paper's section 5 example 1 (guard added so the
// first instance is well defined; the dependence structure is
// unchanged).
const Example1Src = `a = array (1,3*n)
  [* [3*i := 2.0] ++
     [3*i-1 := if i == 1 then 1.0 else 0.5 * a!(3*(i-1))] ++
     [3*i-2 := 0.5 * a!(3*i)]
   | i <- [1..n] *]`

// Example2Src matches the edge structure of section 5, example 2:
// 2→1 (=,>), 1→2 (<,>), 2→3 (<). Analysis-only (partial coverage).
const Example2Src = `param n, m;
a = array ((1,0),(2*n, m+1))
  [* ([* [ (2*i, j)   := a!(2*i-1, j+1) ] ++
          [ (2*i-1, j) := a!(2*i-2, j+1) ]
        | j <- [1..m] *]) ++
     [ (2*i, 0) := a!(2*i-3, 1) ]
   | i <- [1..n] *]`

// MixedPassSrc is the section 8.1.2 acyclic A→B(<), B→C(>), A→C(=)
// example: schedulable in two passes.
const MixedPassSrc = `param n;
a = array (1,3*n)
  [* [ i := 1.0 ] ++
     [ n + i := if i == 1 then 1.0 else a!(i-1) ] ++
     [ 2*n + i := (if i == n then 1.0 else a!(n+i+1)) + a!i ]
   | i <- [1..n] *]`

// CyclicSrc is the section 8.1.2 cycle A→B(<), B→A(>): thunk fallback
// required, yet semantically well defined (staggered chain).
const CyclicSrc = `param n;
a = array (1,2*n)
  [* [ i := if i >= n - 1 then 1.0 else a!(n+i+2) + 1.0 ] ++
     [ n + i := if i == 1 then 1.0 else a!(i-1) + 1.0 ]
   | i <- [1..n] *]`

// RowSwapSrc is the LINPACK row interchange of section 9, written with
// a shared generator so node splitting needs only a per-instance
// scalar.
const RowSwapSrc = `param m, n, i0, k0;
a2 = bigupd a
  [* [ (i0,j) := a!(k0,j) ] ++ [ (k0,j) := a!(i0,j) ] | j <- [1..n] *]`

// JacobiSrc is the section 9 Jacobi step: every neighbour read sees
// the old array, forcing node splitting (inner pipeline + row buffer).
const JacobiSrc = `param n;
a2 = bigupd a
  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i+1,j) + a!(i,j-1) + a!(i,j+1)) ]
   | i <- [2..n-1], j <- [2..n-1] *]`

// SORSrc is the section 9 Gauss-Seidel/SOR step: north/west read the
// new values, south/east the old — all dependences agree with forward
// loops, so the update is purely in place (the Livermore Kernel 23
// wavefront structure).
const SORSrc = `param n;
a2 = bigupd a
  [* [ (i,j) := 0.25 * (a2!(i-1,j) + a2!(i,j-1) + a!(i+1,j) + a!(i,j+1)) ]
   | i <- [2..n-1], j <- [2..n-1] *]`

// Livermore23Src is Livermore Loops Kernel 23 (2-D implicit
// hydrodynamics fragment), which the paper notes has the same
// northwest-to-southeast wavefront structure as SOR. za is updated in
// place from neighbours and coefficient arrays.
const Livermore23Src = `param n;
za2 = bigupd za
  [* [ (j,k) := za!(j,k) + 0.175 *
         (zr!(j,k) * (za2!(j-1,k) - za!(j,k)) +
          zb!(j,k) * (za2!(j,k-1) - za!(j,k)) +
          zu!(j,k) * (za!(j+1,k)  - za!(j,k)) +
          zv!(j,k) * (za!(j,k+1)  - za!(j,k))) ]
   | j <- [2..n-1], k <- [2..n-1] *]`

// ScaleRowSrc scales a matrix row in place (LINPACK DSCAL shape): a
// pure self (=) anti dependence, no copying.
const ScaleRowSrc = `param m, n, i0;
a2 = bigupd a [ (i0,j) := 3.5 * a!(i0,j) | j <- [1..n] ]`

// SaxpyRowSrc adds a multiple of one row to another in place (LINPACK
// DAXPY shape): reads of a different row are never killed.
const SaxpyRowSrc = `param m, n, i0, k0;
a2 = bigupd a [ (k0,j) := a!(k0,j) + 2.0 * a!(i0,j) | j <- [1..n] ]`

// HistogramSrc is the accumArray workload.
const HistogramSrc = `h = accumArray (+) 0.0 (0,99)
  [ (i * 37) mod 100 := 1.0 | i <- [1..n] ]`

// --- input builders ---

// Mesh builds a deterministic pseudo-random n×n matrix with bounds
// (1,1)..(n,n).
func Mesh(n int64, seed int64) *runtime.Strict {
	rng := rand.New(rand.NewSource(seed))
	s := runtime.NewStrict(runtime.NewBounds2(1, 1, n, n))
	for i := range s.Data {
		s.Data[i] = rng.Float64()
	}
	return s
}

// Vector builds a deterministic pseudo-random vector (1..n).
func Vector(n int64, seed int64) *runtime.Strict {
	rng := rand.New(rand.NewSource(seed))
	s := runtime.NewStrict(runtime.NewBounds1(1, n))
	for i := range s.Data {
		s.Data[i] = rng.Float64()
	}
	return s
}

// --- hand-written Go baselines (the "Fortran" stand-ins) ---

// HandSquares computes the squares vector with a plain loop.
func HandSquares(n int64) *runtime.Strict {
	out := runtime.NewStrict(runtime.NewBounds1(1, n))
	for i := int64(1); i <= n; i++ {
		out.Data[i-1] = float64(i * i)
	}
	return out
}

// HandRecurrence computes RecurrenceSrc with a plain loop.
func HandRecurrence(n int64) *runtime.Strict {
	out := runtime.NewStrict(runtime.NewBounds1(1, n))
	out.Data[0] = 1
	for i := int64(2); i <= n; i++ {
		out.Data[i-1] = 0.999*out.Data[i-2] + 0.5
	}
	return out
}

// HandWavefront computes WavefrontSrc with plain loops.
func HandWavefront(n int64) *runtime.Strict {
	out := runtime.NewStrict(runtime.NewBounds2(1, 1, n, n))
	at := func(i, j int64) *float64 { return &out.Data[(i-1)*n+(j-1)] }
	for j := int64(1); j <= n; j++ {
		*at(1, j) = 1
	}
	for i := int64(2); i <= n; i++ {
		*at(i, 1) = 1
	}
	for i := int64(2); i <= n; i++ {
		for j := int64(2); j <= n; j++ {
			*at(i, j) = 0.3**at(i-1, j) + 0.3**at(i, j-1) + 0.4**at(i-1, j-1)
		}
	}
	return out
}

// HandRowSwap swaps rows i0 and k0 in place with a scalar temporary —
// the code the paper's node splitting should match.
func HandRowSwap(a *runtime.Strict, i0, k0 int64) {
	n := a.B.Extent(1)
	ri := (i0 - a.B.Lo[0]) * n
	rk := (k0 - a.B.Lo[0]) * n
	for j := int64(0); j < n; j++ {
		t := a.Data[ri+j]
		a.Data[ri+j] = a.Data[rk+j]
		a.Data[rk+j] = t
	}
}

// HandJacobi performs one Jacobi step in place with a previous-row
// buffer and a pipeline scalar — the hand-coded form the paper says
// node splitting should cost no more than.
func HandJacobi(a *runtime.Strict) {
	n := a.B.Extent(0)
	at := func(i, j int64) int64 { return (i-1)*n + (j - 1) }
	prevRow := make([]float64, n+1)
	// prevRow[j] holds the OLD a(i-1, j) while processing row i.
	for j := int64(1); j <= n; j++ {
		prevRow[j] = a.Data[at(1, j)]
	}
	for i := int64(2); i <= n-1; i++ {
		prevLeft := a.Data[at(i, 1)] // old a(i, j-1) pipeline
		for j := int64(2); j <= n-1; j++ {
			old := a.Data[at(i, j)]
			a.Data[at(i, j)] = 0.25 * (prevRow[j] + a.Data[at(i+1, j)] + prevLeft + a.Data[at(i, j+1)])
			prevRow[j] = old
			prevLeft = old
		}
		// Columns outside [2..n-1] keep their old values in prevRow.
		prevRow[1] = a.Data[at(i, 1)]
		prevRow[n] = a.Data[at(i, n)]
	}
}

// HandSOR performs one Gauss-Seidel step in place with plain loops.
func HandSOR(a *runtime.Strict) {
	n := a.B.Extent(0)
	at := func(i, j int64) int64 { return (i-1)*n + (j - 1) }
	for i := int64(2); i <= n-1; i++ {
		for j := int64(2); j <= n-1; j++ {
			a.Data[at(i, j)] = 0.25 * (a.Data[at(i-1, j)] + a.Data[at(i, j-1)] +
				a.Data[at(i+1, j)] + a.Data[at(i, j+1)])
		}
	}
}

// HandLivermore23 performs one Kernel 23 step in place.
func HandLivermore23(za, zr, zb, zu, zv *runtime.Strict) {
	n := za.B.Extent(0)
	at := func(j, k int64) int64 { return (j-1)*n + (k - 1) }
	for j := int64(2); j <= n-1; j++ {
		for k := int64(2); k <= n-1; k++ {
			o := at(j, k)
			za.Data[o] += 0.175 * (zr.Data[o]*(za.Data[at(j-1, k)]-za.Data[o]) +
				zb.Data[o]*(za.Data[at(j, k-1)]-za.Data[o]) +
				zu.Data[o]*(za.Data[at(j+1, k)]-za.Data[o]) +
				zv.Data[o]*(za.Data[at(j, k+1)]-za.Data[o]))
		}
	}
}

// --- naive persistent-update baselines (section 9's strawman) ---

// NaiveJacobiCopying performs one Jacobi step through the persistent
// CopyArray representation: every element update copies the array.
func NaiveJacobiCopying(a *runtime.Strict) *runtime.Strict {
	n := a.B.Extent(0)
	old := runtime.NewCopyArray(a)
	cur := old
	for i := int64(2); i <= n-1; i++ {
		for j := int64(2); j <= n-1; j++ {
			v := 0.25 * (old.At(i-1, j) + old.At(i+1, j) + old.At(i, j-1) + old.At(i, j+1))
			cur = cur.Upd(v, i, j)
		}
	}
	return cur.Freeze()
}

// TrailerJacobi performs one Jacobi step through the trailer
// representation: O(1) per update on the newest version, but every
// read of the original version pays for the trail.
func TrailerJacobi(a *runtime.Strict) *runtime.Strict {
	n := a.B.Extent(0)
	old := runtime.NewVersionArray(a)
	cur := old
	for i := int64(2); i <= n-1; i++ {
		for j := int64(2); j <= n-1; j++ {
			v := 0.25 * (old.At(i-1, j) + old.At(i+1, j) + old.At(i, j-1) + old.At(i, j+1))
			cur = cur.Upd(v, i, j)
		}
	}
	return cur.Freeze()
}

// NaiveRowSwapCopying swaps rows through the CopyArray representation.
func NaiveRowSwapCopying(a *runtime.Strict, i0, k0 int64) *runtime.Strict {
	n := a.B.Extent(1)
	old := runtime.NewCopyArray(a)
	cur := old
	for j := int64(1); j <= n; j++ {
		cur = cur.Upd(old.At(k0, j), i0, j)
		cur = cur.Upd(old.At(i0, j), k0, j)
	}
	return cur.Freeze()
}

// --- deforestation baselines (section 3.1 / E13) ---

// SumProductsListComp simulates the naive TE translation: materialize
// the intermediate list of values, then fold it.
func SumProductsListComp(a, b *runtime.Strict) float64 {
	n := a.B.Size()
	list := make([]float64, 0, n) // the intermediate list TE builds
	for i := int64(0); i < n; i++ {
		list = append(list, a.Data[i]*b.Data[i])
	}
	var acc float64
	for _, v := range list {
		acc += v
	}
	return acc
}

// SumProductsConsList simulates the fully naive translation with an
// actual cons-cell list (one allocation per element).
func SumProductsConsList(a, b *runtime.Strict) float64 {
	type cell struct {
		head float64
		tail *cell
	}
	var head *cell
	n := a.B.Size()
	for i := n - 1; i >= 0; i-- {
		head = &cell{head: a.Data[i] * b.Data[i], tail: head}
	}
	var acc float64
	for c := head; c != nil; c = c.tail {
		acc += c.head
	}
	return acc
}

// SumProductsFused is the deforested tail-recursive loop the paper's
// translation produces: no intermediate list at all.
func SumProductsFused(a, b *runtime.Strict) float64 {
	var acc float64
	for i, av := range a.Data {
		acc += av * b.Data[i]
	}
	return acc
}

// Livermore23Inputs builds the five coefficient/state arrays.
func Livermore23Inputs(n int64) map[string]*runtime.Strict {
	return map[string]*runtime.Strict{
		"za": Mesh(n, 1),
		"zr": Mesh(n, 2),
		"zb": Mesh(n, 3),
		"zu": Mesh(n, 4),
		"zv": Mesh(n, 5),
	}
}

// ParamsFor returns the parameter binding each workload needs.
func ParamsFor(name string, n int64) map[string]int64 {
	switch name {
	case "rowswap", "scalerow", "saxpy":
		return map[string]int64{"m": n, "n": n, "i0": 2, "k0": n - 1}
	case "example2":
		return map[string]int64{"n": n, "m": n}
	default:
		return map[string]int64{"n": n}
	}
}

// MatrixBoundsFor returns InputBounds-style bounds for the n×n inputs.
func MatrixBounds(n int64) (lo, hi []int64) {
	return []int64{1, 1}, []int64{n, n}
}

// CheckClose reports whether two arrays agree within eps, for harness
// self-checks.
func CheckClose(a, b *runtime.Strict, eps float64) error {
	if !a.EqualWithin(b, eps) {
		return fmt.Errorf("workloads: results differ beyond %g", eps)
	}
	return nil
}

// JacobiMonolithicSrc computes a fresh mesh from an input mesh `b`:
// every element depends only on the input, so all loops are
// dependence-free and eligible for the section 10 parallel extension.
const JacobiMonolithicSrc = `param n;
a = array ((1,1),(n,n))
  ([ (1,j) := b!(1,j) | j <- [1..n] ] ++
   [ (n,j) := b!(n,j) | j <- [1..n] ] ++
   [ (i,1) := b!(i,1) | i <- [2..n-1] ] ++
   [ (i,n) := b!(i,n) | i <- [2..n-1] ] ++
   [ (i,j) := 0.25 * (b!(i-1,j) + b!(i+1,j) + b!(i,j-1) + b!(i,j+1))
     | i <- [2..n-1], j <- [2..n-1] ])`

// HandJacobiMonolithic is the hand-written out-of-place step.
func HandJacobiMonolithic(b *runtime.Strict) *runtime.Strict {
	n := b.B.Extent(0)
	out := runtime.NewStrict(b.B)
	at := func(i, j int64) int64 { return (i-1)*n + (j - 1) }
	copy(out.Data, b.Data)
	for i := int64(2); i <= n-1; i++ {
		for j := int64(2); j <= n-1; j++ {
			out.Data[at(i, j)] = 0.25 * (b.Data[at(i-1, j)] + b.Data[at(i+1, j)] +
				b.Data[at(i, j-1)] + b.Data[at(i, j+1)])
		}
	}
	return out
}
