// Package benchcmp compares two hacbench -json result files and
// reports per-label regressions. It is the shared engine behind the
// benchdiff CLI and hacbench's -baseline flag: both enforce the CI
// bench-regression wall (compiled-path ns/op must not regress more
// than a threshold against the committed baseline).
package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"sort"
	"strings"
)

// Result is one benchmark entry: the machine-readable form hacbench
// writes under each label. Workers is 0 for sequential arms. The host
// fields record where the number was measured — ns/op from different
// machines are not comparable, so the regression wall refuses (or at
// least flags) cross-host diffs rather than producing phantom
// regressions. They are omitempty so result files from before the
// fields existed still load.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Workers     int     `json:"workers,omitempty"`
	NCPU        int     `json:"ncpu,omitempty"`
	GoMaxProcs  int     `json:"gomaxprocs,omitempty"`
	GoVersion   string  `json:"go_version,omitempty"`
}

// Host identifies the measuring machine well enough to veto a
// cross-host comparison.
type Host struct {
	NCPU       int
	GoMaxProcs int
	GoVersion  string
}

// CurrentHost snapshots this process's host identity.
func CurrentHost() Host {
	return Host{NCPU: goruntime.NumCPU(), GoMaxProcs: goruntime.GOMAXPROCS(0), GoVersion: goruntime.Version()}
}

// Stamp copies the host identity into a result entry.
func (h Host) Stamp(r *Result) {
	r.NCPU = h.NCPU
	r.GoMaxProcs = h.GoMaxProcs
	r.GoVersion = h.GoVersion
}

func (h Host) String() string {
	return fmt.Sprintf("ncpu=%d gomaxprocs=%d go=%s", h.NCPU, h.GoMaxProcs, h.GoVersion)
}

// Known reports whether the host was recorded at all (files written
// before the fields existed load as zero hosts).
func (h Host) Known() bool { return h != Host{} }

// HostOf extracts the recorded host of a result file: the first entry
// carrying host fields wins (hacbench stamps every entry identically).
func HostOf(m map[string]Result) Host {
	for _, r := range m {
		if h := (Host{NCPU: r.NCPU, GoMaxProcs: r.GoMaxProcs, GoVersion: r.GoVersion}); h.Known() {
			return h
		}
	}
	return Host{}
}

// HostMismatch compares the recorded hosts of two result files.
// It returns "" when they match or when either file predates host
// stamping (nothing to compare); otherwise a human-readable
// description of the difference.
func HostMismatch(base, newRun map[string]Result) string {
	bh, nh := HostOf(base), HostOf(newRun)
	if !bh.Known() || !nh.Known() || bh == nh {
		return ""
	}
	return fmt.Sprintf("base host (%s) differs from new host (%s)", bh, nh)
}

// Load reads a hacbench -json result file.
func Load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := map[string]Result{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("benchcmp: %s is not a result file: %w", path, err)
	}
	return m, nil
}

// DefaultSkip matches the baseline arms the regression wall ignores:
// thunked, hand-written, and naive variants exist to be slow — only
// the compiled path is gated.
var DefaultSkip = []string{"thunked", "hand", "naive", "trailer", "cons list", "slice list"}

// Skipper returns a label predicate that is true when any of the
// substrings occurs in the label (case-insensitive).
func Skipper(substrings []string) func(string) bool {
	lowered := make([]string, len(substrings))
	for i, s := range substrings {
		lowered[i] = strings.ToLower(strings.TrimSpace(s))
	}
	return func(label string) bool {
		l := strings.ToLower(label)
		for _, s := range lowered {
			if s != "" && strings.Contains(l, s) {
				return true
			}
		}
		return false
	}
}

// Delta is one compared label.
type Delta struct {
	Label  string
	BaseNs float64
	NewNs  float64
}

// Ratio is new/base; > 1 means the new run is slower.
func (d Delta) Ratio() float64 { return d.NewNs / d.BaseNs }

// Report is the outcome of comparing a new run against a baseline.
type Report struct {
	MaxRegressPct float64  // threshold used, e.g. 25
	Compared      []Delta  // every gated label present in both files
	Regressions   []Delta  // subset over the threshold, worst first
	Missing       []string // gated labels in the baseline absent from the new run
	Skipped       []string // labels excluded from gating
}

// OK reports whether the run passed the wall: no regressions and no
// gated baseline labels missing from the new run.
func (r *Report) OK() bool { return len(r.Regressions) == 0 && len(r.Missing) == 0 }

// Compare gates newRun against base: every non-skipped baseline label
// must be present and within maxRegressPct percent of the baseline
// ns/op. Labels only in newRun are ignored (new experiments don't
// break old walls).
func Compare(base, newRun map[string]Result, maxRegressPct float64, skip func(string) bool) *Report {
	rep := &Report{MaxRegressPct: maxRegressPct}
	labels := make([]string, 0, len(base))
	for l := range base {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	limit := 1 + maxRegressPct/100
	for _, l := range labels {
		if skip != nil && skip(l) {
			rep.Skipped = append(rep.Skipped, l)
			continue
		}
		nr, ok := newRun[l]
		if !ok {
			rep.Missing = append(rep.Missing, l)
			continue
		}
		d := Delta{Label: l, BaseNs: base[l].NsPerOp, NewNs: nr.NsPerOp}
		rep.Compared = append(rep.Compared, d)
		if d.BaseNs > 0 && d.Ratio() > limit {
			rep.Regressions = append(rep.Regressions, d)
		}
	}
	sort.Slice(rep.Regressions, func(i, j int) bool {
		return rep.Regressions[i].Ratio() > rep.Regressions[j].Ratio()
	})
	return rep
}

// WriteMachine emits the machine-readable contract CI greps for: one
// BENCH-REGRESS line per offending label, BENCH-MISSING for absent
// labels, then a BENCH-OK or BENCH-FAIL summary line.
func (r *Report) WriteMachine(w io.Writer) {
	for _, d := range r.Regressions {
		fmt.Fprintf(w, "BENCH-REGRESS label=%q base_ns=%.0f new_ns=%.0f ratio=%.3f max_ratio=%.3f\n",
			d.Label, d.BaseNs, d.NewNs, d.Ratio(), 1+r.MaxRegressPct/100)
	}
	for _, l := range r.Missing {
		fmt.Fprintf(w, "BENCH-MISSING label=%q\n", l)
	}
	if r.OK() {
		fmt.Fprintf(w, "BENCH-OK compared=%d skipped=%d max_regress_pct=%.0f\n",
			len(r.Compared), len(r.Skipped), r.MaxRegressPct)
	} else {
		fmt.Fprintf(w, "BENCH-FAIL regressions=%d missing=%d compared=%d\n",
			len(r.Regressions), len(r.Missing), len(r.Compared))
	}
}

// SpeedupCheck asserts an expected performance ordering inside ONE
// result file: the Fast label must run at least MinRatio times faster
// (in ns/op) than the Slow label. This is the other half of the bench
// wall — Compare catches "the compiled path got slower than it was",
// a speedup check catches "the compiled path lost its edge over the
// arm it exists to beat" (native vs hand-written, workers=4 vs
// workers=1) even when both arms drifted together.
type SpeedupCheck struct {
	Slow     string  // label expected to be slower
	Fast     string  // label expected to be faster
	MinRatio float64 // required Slow/Fast ns ratio, e.g. 1.5
}

// ParseSpeedupCheck parses the CLI form "SLOW|FAST|RATIO".
func ParseSpeedupCheck(s string) (SpeedupCheck, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 3 {
		return SpeedupCheck{}, fmt.Errorf("benchcmp: speedup check %q: want SLOW|FAST|RATIO", s)
	}
	var ratio float64
	if _, err := fmt.Sscanf(strings.TrimSpace(parts[2]), "%g", &ratio); err != nil || ratio <= 0 {
		return SpeedupCheck{}, fmt.Errorf("benchcmp: speedup check %q: bad ratio %q", s, parts[2])
	}
	c := SpeedupCheck{Slow: strings.TrimSpace(parts[0]), Fast: strings.TrimSpace(parts[1]), MinRatio: ratio}
	if c.Slow == "" || c.Fast == "" {
		return SpeedupCheck{}, fmt.Errorf("benchcmp: speedup check %q: empty label", s)
	}
	return c, nil
}

// SpeedupResult is one evaluated check.
type SpeedupResult struct {
	Check          SpeedupCheck
	SlowNs, FastNs float64
	Ratio          float64 // SlowNs/FastNs; >= MinRatio passes
	Missing        string  // non-empty when a label is absent from the file
}

// OK reports whether the check held.
func (r SpeedupResult) OK() bool { return r.Missing == "" && r.Ratio >= r.Check.MinRatio }

// CheckSpeedups evaluates every check against one result file and
// reports whether all held.
func CheckSpeedups(m map[string]Result, checks []SpeedupCheck) ([]SpeedupResult, bool) {
	out := make([]SpeedupResult, 0, len(checks))
	allOK := true
	for _, c := range checks {
		r := SpeedupResult{Check: c}
		slow, okS := m[c.Slow]
		fast, okF := m[c.Fast]
		switch {
		case !okS:
			r.Missing = c.Slow
		case !okF:
			r.Missing = c.Fast
		case fast.NsPerOp <= 0:
			r.Missing = c.Fast
		default:
			r.SlowNs, r.FastNs = slow.NsPerOp, fast.NsPerOp
			r.Ratio = slow.NsPerOp / fast.NsPerOp
		}
		if !r.OK() {
			allOK = false
		}
		out = append(out, r)
	}
	return out, allOK
}

// WriteSpeedups emits one machine-readable line per check:
// BENCH-SPEEDUP-OK / BENCH-SPEEDUP-FAIL / BENCH-SPEEDUP-MISSING.
func WriteSpeedups(w io.Writer, results []SpeedupResult) {
	for _, r := range results {
		switch {
		case r.Missing != "":
			fmt.Fprintf(w, "BENCH-SPEEDUP-MISSING label=%q slow=%q fast=%q\n",
				r.Missing, r.Check.Slow, r.Check.Fast)
		case r.OK():
			fmt.Fprintf(w, "BENCH-SPEEDUP-OK slow=%q fast=%q ratio=%.2f min=%.2f\n",
				r.Check.Slow, r.Check.Fast, r.Ratio, r.Check.MinRatio)
		default:
			fmt.Fprintf(w, "BENCH-SPEEDUP-FAIL slow=%q fast=%q ratio=%.2f min=%.2f\n",
				r.Check.Slow, r.Check.Fast, r.Ratio, r.Check.MinRatio)
		}
	}
}

// WriteTable renders a human-oriented comparison of every compared
// label, flagging the ones over the threshold.
func (r *Report) WriteTable(w io.Writer) {
	for _, d := range r.Compared {
		flag := ""
		if d.BaseNs > 0 && d.Ratio() > 1+r.MaxRegressPct/100 {
			flag = "  <-- REGRESSION"
		}
		fmt.Fprintf(w, "  %-36s %12.0f -> %12.0f ns/op  (%.2fx)%s\n",
			d.Label, d.BaseNs, d.NewNs, d.Ratio(), flag)
	}
}
