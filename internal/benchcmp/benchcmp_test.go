package benchcmp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareFlagsOnlyOverThreshold(t *testing.T) {
	base := map[string]Result{
		"opt/compiled n=256": {NsPerOp: 1000},
		"opt/SOR seq":        {NsPerOp: 2000},
		"opt/fast path":      {NsPerOp: 500},
	}
	newRun := map[string]Result{
		"opt/compiled n=256": {NsPerOp: 1240}, // +24%: under the wall
		"opt/SOR seq":        {NsPerOp: 2600}, // +30%: over
		"opt/fast path":      {NsPerOp: 400},  // improvement
	}
	rep := Compare(base, newRun, 25, nil)
	if len(rep.Compared) != 3 {
		t.Fatalf("compared %d labels, want 3", len(rep.Compared))
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Label != "opt/SOR seq" {
		t.Fatalf("regressions = %+v, want exactly opt/SOR seq", rep.Regressions)
	}
	if rep.OK() {
		t.Fatal("report with a regression must not be OK")
	}
}

func TestCompareSkipsBaselineArms(t *testing.T) {
	base := map[string]Result{
		"opt/compiled n=256":           {NsPerOp: 1000},
		"opt/thunked  n=256":           {NsPerOp: 9000},
		"opt/handwritten n=256":        {NsPerOp: 800},
		"opt/naive per-update copying": {NsPerOp: 5000},
	}
	newRun := map[string]Result{
		"opt/compiled n=256":    {NsPerOp: 1000},
		"opt/thunked  n=256":    {NsPerOp: 90000}, // 10x slower but not gated
		"opt/handwritten n=256": {NsPerOp: 8000},
	}
	rep := Compare(base, newRun, 25, Skipper(DefaultSkip))
	if !rep.OK() {
		t.Fatalf("baseline arms must be skipped: %+v", rep.Regressions)
	}
	if len(rep.Skipped) != 3 {
		t.Fatalf("skipped = %v, want the 3 baseline arms", rep.Skipped)
	}
}

func TestCompareMissingLabelFails(t *testing.T) {
	base := map[string]Result{"opt/compiled n=256": {NsPerOp: 1000}}
	rep := Compare(base, map[string]Result{}, 25, nil)
	if rep.OK() || len(rep.Missing) != 1 {
		t.Fatalf("missing gated label must fail the wall: %+v", rep)
	}
}

func TestWriteMachineContract(t *testing.T) {
	base := map[string]Result{
		"opt/a": {NsPerOp: 1000},
		"opt/b": {NsPerOp: 1000},
	}
	newRun := map[string]Result{
		"opt/a": {NsPerOp: 2000},
		"opt/b": {NsPerOp: 1000},
	}
	var buf bytes.Buffer
	Compare(base, newRun, 25, nil).WriteMachine(&buf)
	out := buf.String()
	if !strings.Contains(out, `BENCH-REGRESS label="opt/a" base_ns=1000 new_ns=2000 ratio=2.000`) {
		t.Errorf("missing BENCH-REGRESS line:\n%s", out)
	}
	if !strings.Contains(out, "BENCH-FAIL regressions=1") {
		t.Errorf("missing BENCH-FAIL summary:\n%s", out)
	}
	buf.Reset()
	Compare(base, map[string]Result{"opt/a": {NsPerOp: 1000}, "opt/b": {NsPerOp: 1000}}, 25, nil).WriteMachine(&buf)
	if !strings.Contains(buf.String(), "BENCH-OK compared=2") {
		t.Errorf("missing BENCH-OK summary:\n%s", buf.String())
	}
}

func TestParseSpeedupCheck(t *testing.T) {
	c, err := ParseSpeedupCheck("sor interp|sor native|1.5")
	if err != nil {
		t.Fatal(err)
	}
	if c.Slow != "sor interp" || c.Fast != "sor native" || c.MinRatio != 1.5 {
		t.Fatalf("parsed %+v", c)
	}
	for _, bad := range []string{"", "a|b", "a|b|c|d", "a|b|zero", "a|b|-1", "|b|2", "a||2"} {
		if _, err := ParseSpeedupCheck(bad); err == nil {
			t.Errorf("ParseSpeedupCheck(%q) accepted junk", bad)
		}
	}
}

func TestCheckSpeedups(t *testing.T) {
	m := map[string]Result{
		"sor interp":        {NsPerOp: 3000},
		"sor native":        {NsPerOp: 1000},
		"jacobi workers=1":  {NsPerOp: 4000},
		"jacobi workers=4":  {NsPerOp: 3500}, // only 1.14x, below 1.5
		"wavefront workers": {NsPerOp: 0},
	}
	checks := []SpeedupCheck{
		{Slow: "sor interp", Fast: "sor native", MinRatio: 2},               // 3.0x: holds
		{Slow: "jacobi workers=1", Fast: "jacobi workers=4", MinRatio: 1.5}, // lost its edge
		{Slow: "sor interp", Fast: "absent", MinRatio: 1},                   // missing label
		{Slow: "sor interp", Fast: "wavefront workers", MinRatio: 1},        // zero ns: unusable
	}
	results, ok := CheckSpeedups(m, checks)
	if ok {
		t.Fatal("a failing check must fail the set")
	}
	if !results[0].OK() || results[0].Ratio != 3 {
		t.Fatalf("holding check misjudged: %+v", results[0])
	}
	if results[1].OK() || results[1].Missing != "" {
		t.Fatalf("lost-edge check misjudged: %+v", results[1])
	}
	if results[2].Missing != "absent" || results[3].Missing != "wavefront workers" {
		t.Fatalf("missing labels misjudged: %+v %+v", results[2], results[3])
	}
	var buf bytes.Buffer
	WriteSpeedups(&buf, results)
	out := buf.String()
	if !strings.Contains(out, `BENCH-SPEEDUP-OK slow="sor interp" fast="sor native" ratio=3.00 min=2.00`) {
		t.Errorf("missing BENCH-SPEEDUP-OK line:\n%s", out)
	}
	if !strings.Contains(out, `BENCH-SPEEDUP-FAIL slow="jacobi workers=1" fast="jacobi workers=4"`) {
		t.Errorf("missing BENCH-SPEEDUP-FAIL line:\n%s", out)
	}
	if !strings.Contains(out, `BENCH-SPEEDUP-MISSING label="absent"`) {
		t.Errorf("missing BENCH-SPEEDUP-MISSING line:\n%s", out)
	}
	// All-holding set reports ok.
	if _, ok := CheckSpeedups(m, checks[:1]); !ok {
		t.Fatal("holding set must pass")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{"opt/a": {"ns_per_op": 123.5, "allocs_per_op": 7, "workers": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r := m["opt/a"]
	if r.NsPerOp != 123.5 || r.AllocsPerOp != 7 || r.Workers != 2 {
		t.Fatalf("loaded %+v", r)
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("loading a missing file must error")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("loading junk must error")
	}
}
