package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"arraycomp/internal/runtime"
	"arraycomp/internal/workloads"
)

func mustUnmarshal(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
}

func sparseEvalRequest(c workloads.SparseCase, opts optionsJSON) evalRequest {
	opts.InputBounds = map[string]boundsJSON{}
	inputs := map[string]arrayJSON{}
	for name, a := range c.Inputs {
		opts.InputBounds[name] = boundsJSON{Lo: a.B.Lo, Hi: a.B.Hi}
		inputs[name] = arrayJSON{Lo: a.B.Lo, Hi: a.B.Hi, Data: a.Data}
	}
	return evalRequest{
		compileRequest: compileRequest{Source: workloads.SpMVSrc, Params: c.Params, Options: opts},
		evalContext:    evalContext{Inputs: inputs},
	}
}

func scrapeCounter(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		io.Copy(io.Discard, resp.Body)
		return v
	}
	t.Fatalf("metric %s absent from exposition", name)
	return 0
}

func checkSpMVResult(t *testing.T, got arrayJSON, want *runtime.Strict) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("result has %d elements, want %d", len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("result[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestEvalSpMVIdxPropMetrics is the end-to-end irregular-workload
// contract for the daemon: a certified, claim-conditional SpMV
// submitted over HTTP (1) verifies its CSR-ordered index arrays at
// runtime and surfaces that in /metrics, and (2) on a violating
// (shuffled, non-monotone) index array falls back to the checked
// sequential path with the identical correct result — never a 5xx.
func TestEvalSpMVIdxPropMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)
	opts := optionsJSON{Parallel: true, Workers: 4, Certify: true}

	good := workloads.CSRInputs(64, 4, 9)
	resp, body := postJSON(t, ts.URL+"/eval", sparseEvalRequest(good, opts))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("CSR eval status = %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	mustUnmarshal(t, body, &er)
	checkSpMVResult(t, er.Result, workloads.HandSpMV(good))
	verified := scrapeCounter(t, ts, "haccd_idxprop_verified_total")
	if verified == 0 {
		t.Fatalf("haccd_idxprop_verified_total = 0 after a verifying eval")
	}
	if failed := scrapeCounter(t, ts, "haccd_idxprop_verify_failures_total"); failed != 0 {
		t.Fatalf("haccd_idxprop_verify_failures_total = %v before any violating eval", failed)
	}

	// Same program, same cache entry — only the inputs change. The
	// shuffled rows break the monotonicity claim, so the verifier must
	// reject and the checked sequential branch must produce the same
	// matrix-vector product the CSR ordering did.
	bad := workloads.ShuffleRows(good, 10)
	resp, body = postJSON(t, ts.URL+"/eval", sparseEvalRequest(bad, opts))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("violating eval status = %d (want 200, never 5xx): %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &er)
	if er.Cache != "hit" {
		t.Errorf("violating eval cache = %s, want hit (inputs are not part of the key)", er.Cache)
	}
	checkSpMVResult(t, er.Result, workloads.HandSpMV(bad))
	if failed := scrapeCounter(t, ts, "haccd_idxprop_verify_failures_total"); failed == 0 {
		t.Errorf("haccd_idxprop_verify_failures_total = 0 after a violating eval (fallback never taken)")
	}
	if again := scrapeCounter(t, ts, "haccd_idxprop_verified_total"); again < verified {
		t.Errorf("haccd_idxprop_verified_total went backwards: %v -> %v", verified, again)
	}
}
