package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"arraycomp/internal/core"
	"arraycomp/internal/metrics"
)

const wavefrontSrc = `a = array ((1,1),(n,n))
  ([ (1,j) := 1.0 | j <- [1..n] ] ++
   [ (i,1) := 1.0 | i <- [2..n] ] ++
   [ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ])`

const scaleSrc = `a2 = array (1,n) [ i := b!i * 2.0 | i <- [1..n] ]`

func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CacheEntries = 32
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestCompileMissThenHit(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 16}}
	resp, body := postJSON(t, ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d: %s", resp.StatusCode, body)
	}
	var first compileResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" || first.CompileNs <= 0 || len(first.PhasesNs) == 0 {
		t.Fatalf("first compile: %+v, want a miss with phase costs", first)
	}
	if first.Report.Modes["a"] != "thunkless" {
		t.Fatalf("report modes = %v, want a: thunkless", first.Report.Modes)
	}
	if first.Report.Counters.CollisionChecksElided != 3 {
		t.Fatalf("counters = %+v, want 3 collision checks elided", first.Report.Counters)
	}
	_, body = postJSON(t, ts.URL+"/compile", req)
	var second compileResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" || second.CompileNs != 0 || len(second.PhasesNs) != 0 {
		t.Fatalf("second compile: %+v, want a zero-cost hit", second)
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", second.Key, first.Key)
	}
}

// The acceptance contract: /eval on a warm cache skips
// parse/analyze/lower entirely — zero compile-phase time is recorded
// for the request, both in the response and in the phase histograms.
func TestEvalWarmCacheSkipsCompilePhases(t *testing.T) {
	s, ts := newTestServer(t, nil)
	req := evalRequest{compileRequest: compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 24}}}
	resp, body := postJSON(t, ts.URL+"/eval", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold eval status = %d: %s", resp.StatusCode, body)
	}
	var cold evalResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cache != "miss" || cold.CompileNs <= 0 {
		t.Fatalf("cold eval: cache=%s compile_ns=%d, want a paid miss", cold.Cache, cold.CompileNs)
	}
	// Snapshot per-phase observation counts after the cold compile.
	phaseCounts := map[string]uint64{}
	for _, ph := range metrics.Phases {
		phaseCounts[ph] = s.phaseSeconds.With(ph).Count()
	}
	if phaseCounts[metrics.PhaseParse] == 0 || phaseCounts[metrics.PhaseLower] == 0 {
		t.Fatalf("cold compile recorded no phase observations: %v", phaseCounts)
	}

	for i := 0; i < 3; i++ {
		_, body = postJSON(t, ts.URL+"/eval", req)
		var warm evalResponse
		if err := json.Unmarshal(body, &warm); err != nil {
			t.Fatal(err)
		}
		if warm.Cache != "hit" {
			t.Fatalf("eval %d: cache=%s, want hit", i, warm.Cache)
		}
		if warm.CompileNs != 0 || len(warm.PhasesNs) != 0 {
			t.Fatalf("eval %d recorded compile-phase time on a hit: compile_ns=%d phases=%v",
				i, warm.CompileNs, warm.PhasesNs)
		}
		if warm.EvalNs <= 0 {
			t.Fatalf("eval %d: eval_ns=%d, want >0", i, warm.EvalNs)
		}
	}
	// The histograms saw nothing new: zero compile-phase time recorded
	// on hits.
	for _, ph := range metrics.Phases {
		if got := s.phaseSeconds.With(ph).Count(); got != phaseCounts[ph] {
			t.Errorf("phase %s histogram grew on warm evals: %d -> %d", ph, phaseCounts[ph], got)
		}
	}
}

// 64 concurrent /eval requests against one warm entry must all
// succeed with outputs bitwise identical to a cold out-of-process
// compile. Run under -race in CI.
func TestEvalConcurrentBitwiseIdentical(t *testing.T) {
	_, ts := newTestServer(t, nil)
	params := map[string]int64{"n": 32}
	// The reference: a cold compile+run through core directly.
	prog, err := core.Compile(wavefrontSrc, params, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	req := evalRequest{compileRequest: compileRequest{Source: wavefrontSrc, Params: params}}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/eval", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var er evalResponse
			if err := json.Unmarshal(body, &er); err != nil {
				errs[i] = err
				return
			}
			if len(er.Result.Data) != len(want.Data) {
				errs[i] = fmt.Errorf("result size %d, want %d", len(er.Result.Data), len(want.Data))
				return
			}
			for j := range want.Data {
				if math.Float64bits(er.Result.Data[j]) != math.Float64bits(want.Data[j]) {
					errs[i] = fmt.Errorf("element %d differs bitwise from cold compile", j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestEvalWithExplicitAndGeneratedInputs(t *testing.T) {
	_, ts := newTestServer(t, nil)
	bounds := map[string]boundsJSON{"b": {Lo: []int64{1}, Hi: []int64{4}}}
	// Explicit data.
	req := evalRequest{
		compileRequest: compileRequest{
			Source:  scaleSrc,
			Params:  map[string]int64{"n": 4},
			Options: optionsJSON{InputBounds: bounds},
		},
		evalContext: evalContext{Inputs: map[string]arrayJSON{"b": {Lo: []int64{1}, Hi: []int64{4}, Data: []float64{1, 2, 3, 4}}}},
	}
	resp, body := postJSON(t, ts.URL+"/eval", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status = %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(er.Result.Data) != "[2 4 6 8]" {
		t.Fatalf("result = %v, want [2 4 6 8]", er.Result.Data)
	}
	// Generated inputs are deterministic in the seed.
	gen := evalRequest{compileRequest: req.compileRequest, evalContext: evalContext{Seed: 7}}
	_, b1 := postJSON(t, ts.URL+"/eval", gen)
	_, b2 := postJSON(t, ts.URL+"/eval", gen)
	var er1, er2 evalResponse
	if err := json.Unmarshal(b1, &er1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &er2); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(er1.Result.Data) != fmt.Sprint(er2.Result.Data) {
		t.Fatalf("seeded eval not deterministic: %v vs %v", er1.Result.Data, er2.Result.Data)
	}
	// Mismatched data length is a 400.
	bad := req
	bad.Inputs = map[string]arrayJSON{"b": {Lo: []int64{1}, Hi: []int64{4}, Data: []float64{1}}}
	resp, _ = postJSON(t, ts.URL+"/eval", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input data: status = %d, want 400", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 8}}
	postJSON(t, ts.URL+"/compile", req)
	postJSON(t, ts.URL+"/compile", req)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"haccd_cache_hits_total 1",
		"haccd_cache_misses_total 1",
		"haccd_cache_evictions_total 0",
		"haccd_cache_entries 1",
		`haccd_compile_phase_seconds_count{phase="parse"} 1`,
		`haccd_compile_phase_seconds_bucket{phase="lower",le="+Inf"} 1`,
		`haccd_requests_total{handler="compile"} 2`,
		`haccd_opt_total{kind="collision_checks_elided"} 3`,
		`haccd_schedules_total{kind="sequential"}`,
		"haccd_cache_singleflight_waits_total 0",
		"haccd_cache_disk_hits_total 0",
		"haccd_cache_disk_writes_total 0",
		"haccd_cache_disk_discards_total 0",
		"haccd_queued_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBody = 256 })
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d, want 400", resp.StatusCode)
	}
	// Missing source.
	resp, _ = postJSON(t, ts.URL+"/compile", compileRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing source: status = %d, want 400", resp.StatusCode)
	}
	// Compile error.
	resp, _ = postJSON(t, ts.URL+"/compile", compileRequest{Source: "a = array (1,n) [ i := z!i | i <- [1..n] ]", Params: map[string]int64{"n": 4}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("compile error: status = %d, want 422", resp.StatusCode)
	}
	// Body over the cap.
	big := compileRequest{Source: strings.Repeat("x", 1024)}
	resp, _ = postJSON(t, ts.URL+"/compile", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compile: status = %d, want 405", resp.StatusCode)
	}
}

// The limiter serializes work but never loses requests.
func TestConcurrencyLimiterReleasesSlots(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Concurrency = 1 })
	req := evalRequest{compileRequest: compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 16}}}
	data, _ := json.Marshal(req)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/eval", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d under limiter", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
}

// Parallel-scheduled plans execute on the shared warm worker pool.
func TestEvalParallelOptions(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := evalRequest{compileRequest: compileRequest{
		Source:  wavefrontSrc,
		Params:  map[string]int64{"n": 64},
		Options: optionsJSON{Parallel: true, Workers: 4},
	}}
	resp, body := postJSON(t, ts.URL+"/eval", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parallel eval status = %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	// Sequential and parallel plans are distinct cache entries with
	// bitwise-identical results (PR 3's determinism contract).
	seq := evalRequest{compileRequest: compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 64}}}
	_, sbody := postJSON(t, ts.URL+"/eval", seq)
	var sr evalResponse
	if err := json.Unmarshal(sbody, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Key == er.Key {
		t.Fatal("parallel and sequential requests share a cache key")
	}
	for i := range sr.Result.Data {
		if math.Float64bits(sr.Result.Data[i]) != math.Float64bits(er.Result.Data[i]) {
			t.Fatalf("parallel result diverges at %d", i)
		}
	}
}

// TestEvalTiered drives one plan across the promotion boundary:
// tier=auto with a threshold of 2 and synchronous promotion serves the
// first eval interpreted, promotes inline on the second, and serves
// natively from then on — with every response bitwise identical to an
// untiered eval, and the tier counters/gauges visible in /metrics.
func TestEvalTiered(t *testing.T) {
	_, ts := newTestServer(t, nil)
	params := map[string]int64{"n": 16}
	req := evalRequest{compileRequest: compileRequest{
		Source:  wavefrontSrc,
		Params:  params,
		Options: optionsJSON{Tier: "auto", TierThreshold: 2, TierSync: true},
	}}
	plain := evalRequest{compileRequest: compileRequest{Source: wavefrontSrc, Params: params}}
	_, pbody := postJSON(t, ts.URL+"/eval", plain)
	var want evalResponse
	if err := json.Unmarshal(pbody, &want); err != nil {
		t.Fatal(err)
	}
	wantTiers := []string{"interpreted", "native", "native"}
	for i, wantTier := range wantTiers {
		resp, body := postJSON(t, ts.URL+"/eval", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tiered eval %d: status %d: %s", i, resp.StatusCode, body)
		}
		var er evalResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Tier != wantTier {
			t.Fatalf("eval %d served by tier %q, want %q", i, er.Tier, wantTier)
		}
		for j := range want.Result.Data {
			if math.Float64bits(er.Result.Data[j]) != math.Float64bits(want.Result.Data[j]) {
				t.Fatalf("eval %d (tier %s): element %d differs bitwise from untiered eval", i, er.Tier, j)
			}
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, wantLine := range []string{
		`haccd_tier_runs_total{tier="interpreted"} 1`, // the pre-promotion eval; untiered plans don't tally
		`haccd_tier_runs_total{tier="native"} 2`,
		"haccd_tier_promotions_total 1",
		"haccd_tier_promote_failures_total 0",
		"haccd_cache_native_entries 1",
	} {
		if !strings.Contains(out, wantLine) {
			t.Errorf("metrics exposition missing %q", wantLine)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

// TestEvalTierServerDefault: a server started with -tier native applies
// the policy to requests that don't mention tiering, and a request that
// says tier:"off" opts out of the default.
func TestEvalTierServerDefault(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Tier = core.TierForced })
	req := evalRequest{compileRequest: compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 8}}}
	resp, body := postJSON(t, ts.URL+"/eval", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status = %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Tier != "native" {
		t.Fatalf("server-default forced tier served %q, want native", er.Tier)
	}
	off := req
	off.Options = optionsJSON{Tier: "off"}
	_, body = postJSON(t, ts.URL+"/eval", off)
	var offResp evalResponse
	if err := json.Unmarshal(body, &offResp); err != nil {
		t.Fatal(err)
	}
	if offResp.Tier == "native" {
		t.Fatalf("explicit tier:off still served natively")
	}
	if offResp.Key == er.Key {
		t.Fatal("tiered and untiered requests share a cache key")
	}
	// An unknown tier policy is a 400, not a compile attempt.
	bad := req
	bad.Options = optionsJSON{Tier: "warp"}
	resp, _ = postJSON(t, ts.URL+"/eval", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tier mode: status = %d, want 400", resp.StatusCode)
	}
}
