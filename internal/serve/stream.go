// /evalstream: chunked evaluation over the bounded-memory streaming
// engine, plus the drain-rate estimator behind Retry-After.
//
// The response is NDJSON: one header line (cache/provenance and
// whether the pipeline engaged), then result chunks in position order,
// then one trailer line with the run accounting. A program the window
// analysis rejects still answers — materialized, as a single chunk —
// so clients need no fallback logic of their own; the header's
// "streamed" field says which engine served them.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"
)

// streamHeaderJSON is the first NDJSON line of an /evalstream response.
type streamHeaderJSON struct {
	Key   string `json:"key"`
	Cache string `json:"cache"` // "hit" | "miss" | "disk"
	// Streamed: the chunked pipeline engaged. False means the window
	// analysis rejected the program and the result arrives as one
	// materialized chunk; Fallback carries the reason.
	Streamed bool   `json:"streamed"`
	Fallback string `json:"fallback,omitempty"`
	Lo       int64  `json:"lo"`
	Hi       int64  `json:"hi"`
}

// streamChunkJSON is one result chunk: Data holds the elements at
// positions Lo..Lo+len(Data)-1. Chunks arrive in position order and
// concatenate to the full result.
type streamChunkJSON struct {
	Lo   int64     `json:"lo"`
	Data []float64 `json:"data"`
}

// streamTrailerJSON is the last NDJSON line.
type streamTrailerJSON struct {
	Done   bool   `json:"done"`
	EvalNs int64  `json:"eval_ns"`
	Chunks int64  `json:"chunks"`
	Tier   string `json:"tier"`
	// PeakBytes / MaterializedBytes are the deterministic accounting of
	// a streamed run: what the pipeline actually held live vs what the
	// materialized store would have held. Zero on fallback runs.
	PeakBytes         int64 `json:"peak_bytes,omitempty"`
	MaterializedBytes int64 `json:"materialized_bytes,omitempty"`
}

// streamErrorJSON reports a failure after the header has been sent
// (the status line is already on the wire, so mid-stream errors are
// in-band).
type streamErrorJSON struct {
	Error string `json:"error"`
}

// handleEvalStream is POST /evalstream: the /eval request shape,
// answered as NDJSON chunks. Options.Stream is forced on — it is part
// of the cache key, so streaming entries never collide with
// materialized ones.
func (s *Server) handleEvalStream(w http.ResponseWriter, r *http.Request) (int, error) {
	var req evalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return decodeErrorStatus(err), fmt.Errorf("bad request body: %w", err)
	}
	req.Options.Stream = true
	if s.maybeProxy(w, r, req.compileRequest, &req) {
		return 0, nil
	}
	entry, cresp, code, err := s.compileThrough(req.compileRequest)
	if err != nil {
		return code, err
	}
	inputs, err := buildInputs(req.Options, req.evalContext)
	if err != nil {
		return http.StatusBadRequest, err
	}

	prog := entry.Program
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")

	if !prog.StreamActive() {
		// Materialized fallback: one chunk, same protocol.
		s.streamRequests.With("fallback").Inc()
		t0 := time.Now()
		out, tier, err := prog.RunTiered(inputs)
		evalNs := time.Since(t0)
		if err != nil {
			return http.StatusUnprocessableEntity, err
		}
		s.evalSeconds.Observe(evalNs.Seconds())
		hdr := streamHeaderJSON{
			Key: cresp.Key, Cache: cresp.Cache,
			Streamed: false, Fallback: prog.StreamFallback(),
			Lo: out.B.Lo[0], Hi: out.B.Hi[0],
		}
		if err := enc.Encode(hdr); err != nil {
			return 0, nil // client went away
		}
		enc.Encode(streamChunkJSON{Lo: out.B.Lo[0], Data: out.Data})
		s.streamChunks.Inc()
		enc.Encode(streamTrailerJSON{Done: true, EvalNs: evalNs.Nanoseconds(), Chunks: 1, Tier: string(tier)})
		flush()
		return 0, nil
	}

	s.streamRequests.With("streamed").Inc()
	resLo, resHi, _ := prog.StreamBounds()
	t0 := time.Now()
	var chunks int64
	var sentHeader bool
	rep, runErr := prog.RunStream(inputs, func(lo int64, data []float64) error {
		if !sentHeader {
			// Emit the header lazily so a pre-first-chunk failure can
			// still use the HTTP status code.
			sentHeader = true
			hdr := streamHeaderJSON{Key: cresp.Key, Cache: cresp.Cache, Streamed: true, Lo: resLo, Hi: resHi}
			if err := enc.Encode(hdr); err != nil {
				return err
			}
		}
		if err := enc.Encode(streamChunkJSON{Lo: lo, Data: data}); err != nil {
			return err
		}
		chunks++
		s.streamChunks.Inc()
		flush()
		return nil
	})
	evalNs := time.Since(t0)
	if runErr != nil {
		if !sentHeader {
			return http.StatusUnprocessableEntity, runErr
		}
		enc.Encode(streamErrorJSON{Error: runErr.Error()})
		flush()
		return 0, nil
	}
	s.evalSeconds.Observe(evalNs.Seconds())
	s.streamPeakBytes.Observe(float64(rep.PeakBytes))
	enc.Encode(streamTrailerJSON{
		Done: true, EvalNs: evalNs.Nanoseconds(), Chunks: chunks, Tier: "stream",
		PeakBytes: rep.PeakBytes, MaterializedBytes: rep.MaterializedBytes,
	})
	flush()
	return 0, nil
}

// --- Retry-After derivation (admission control) ---

// drainMeter estimates the server's completion rate (requests
// finishing per second) over a short sliding window. It exists so a
// shed's Retry-After reflects how fast the backlog actually drains
// instead of a flat constant.
type drainMeter struct {
	mu        sync.Mutex
	completed int64 // total completions, monotonic
	winStart  time.Time
	winBase   int64   // completed at winStart
	rate      float64 // requests/second over the last closed window
}

// drainWindow is the minimum window length before the rate estimate
// rolls over. Short enough to track a load spike, long enough that a
// couple of fast requests don't read as sustained throughput.
const drainWindow = 250 * time.Millisecond

func (m *drainMeter) complete() {
	now := time.Now()
	m.mu.Lock()
	m.completed++
	switch {
	case m.winStart.IsZero():
		m.winStart, m.winBase = now, m.completed-1
	default:
		if el := now.Sub(m.winStart); el >= drainWindow {
			m.rate = float64(m.completed-m.winBase) / el.Seconds()
			m.winStart, m.winBase = now, m.completed
		}
	}
	m.mu.Unlock()
}

// perSec returns the current drain-rate estimate. A stale window
// (nothing completing) decays the estimate: the longer the silence,
// the lower the believable rate.
func (m *drainMeter) perSec() float64 {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.winStart.IsZero() {
		if el := now.Sub(m.winStart); el >= drainWindow {
			if cur := float64(m.completed-m.winBase) / el.Seconds(); cur < m.rate {
				m.rate = cur
			}
		}
	}
	return m.rate
}

// retryAfterSecs converts the shed-time backlog (queued + in-flight
// requests) and the observed drain rate into a Retry-After value: the
// estimated seconds until the backlog has drained, clamped to
// [1, ceil(timeout)]. A zero or unknown rate means the server cannot
// promise progress, so the client backs off the full request timeout.
func retryAfterSecs(backlog int64, perSec float64, timeout time.Duration) int {
	ceil := int(math.Ceil(timeout.Seconds()))
	if ceil < 1 {
		ceil = 1
	}
	if perSec <= 0 {
		return ceil
	}
	secs := int(math.Ceil(float64(backlog) / perSec))
	if secs < 1 {
		return 1
	}
	if secs > ceil {
		return ceil
	}
	return secs
}
