package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"testing"
	"time"

	"arraycomp/internal/testutil"
)

// streamSrc is a three-stage bounded-distance pipeline: elementwise,
// d=1 recurrence, elementwise. Every stage passes the window-legality
// analysis, so /evalstream serves it chunked.
const streamSrc = `letrec* a = array (1,n) [ i := x!i + 1.0 | i <- [1..n] ];
  b = array (1,n) ([ 1 := a!1 ] ++ [ i := b!(i-1) * 0.5 + a!i | i <- [2..n] ]);
  res = array (1,n) [ i := b!i * 2.0 | i <- [1..n] ]
in res`

// decodeStream splits an /evalstream NDJSON body into its header,
// chunks, and trailer, failing on any in-band error line.
func decodeStream(t *testing.T, body []byte) (streamHeaderJSON, []streamChunkJSON, streamTrailerJSON) {
	t.Helper()
	var (
		hdr     streamHeaderJSON
		chunks  []streamChunkJSON
		trailer streamTrailerJSON
		gotHdr  bool
		gotTrl  bool
	)
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !gotHdr {
			if err := json.Unmarshal(line, &hdr); err != nil {
				t.Fatalf("bad header line %q: %v", line, err)
			}
			gotHdr = true
			continue
		}
		var probe struct {
			Error string `json:"error"`
			Done  bool   `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Error != "" {
			t.Fatalf("in-band stream error: %s", probe.Error)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatal(err)
			}
			gotTrl = true
			continue
		}
		var ch streamChunkJSON
		if err := json.Unmarshal(line, &ch); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, ch)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !gotHdr || !gotTrl {
		t.Fatalf("incomplete stream: header=%v trailer=%v", gotHdr, gotTrl)
	}
	return hdr, chunks, trailer
}

// /evalstream on a streamable pipeline: chunks arrive in position
// order and concatenate bitwise-equal to the materialized /eval
// result, and the trailer's accounting shows the bounded footprint.
func TestEvalStreamMatchesEval(t *testing.T) {
	_, ts := newTestServer(t, nil)
	const n = 20000
	req := evalRequest{
		compileRequest: compileRequest{
			Source: streamSrc,
			Params: map[string]int64{"n": n},
			Options: optionsJSON{
				InputBounds: map[string]boundsJSON{"x": {Lo: []int64{1}, Hi: []int64{n}}},
			},
		},
		evalContext: evalContext{Seed: 5},
	}

	// Materialized reference via /eval (no stream option: distinct
	// cache key, classic path).
	resp, body := postJSON(t, ts.URL+"/eval", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval: status %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}

	resp, body = postJSON(t, ts.URL+"/evalstream", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evalstream: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	hdr, chunks, trailer := decodeStream(t, body)

	if !hdr.Streamed || hdr.Fallback != "" {
		t.Fatalf("pipeline did not stream: %+v", hdr)
	}
	if hdr.Lo != 1 || hdr.Hi != n {
		t.Fatalf("header bounds [%d,%d], want [1,%d]", hdr.Lo, hdr.Hi, n)
	}
	if len(chunks) < 2 {
		t.Fatalf("got %d chunks; n=%d over the default grid must split", len(chunks), n)
	}
	// Position order, gap-free, bitwise equal to the reference.
	var got []float64
	next := hdr.Lo
	for _, ch := range chunks {
		if ch.Lo != next {
			t.Fatalf("chunk at lo=%d, want %d (order/gap)", ch.Lo, next)
		}
		next += int64(len(ch.Data))
		got = append(got, ch.Data...)
	}
	if len(got) != len(er.Result.Data) {
		t.Fatalf("streamed %d elements, materialized %d", len(got), len(er.Result.Data))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(er.Result.Data[i]) {
			t.Fatalf("streamed result diverges from /eval at element %d", i)
		}
	}
	if !trailer.Done || trailer.Tier != "stream" {
		t.Fatalf("trailer = %+v, want done tier=stream", trailer)
	}
	if trailer.Chunks != int64(len(chunks)) {
		t.Fatalf("trailer counts %d chunks, saw %d", trailer.Chunks, len(chunks))
	}
	if trailer.PeakBytes <= 0 || trailer.MaterializedBytes <= trailer.PeakBytes {
		t.Fatalf("accounting unconvincing: peak=%d materialized=%d", trailer.PeakBytes, trailer.MaterializedBytes)
	}
}

// A program the window analysis rejects still answers on /evalstream:
// one materialized chunk, with the fallback reason in the header.
func TestEvalStreamFallback(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := evalRequest{
		compileRequest: compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 12}},
	}

	resp, body := postJSON(t, ts.URL+"/eval", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval: status %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}

	resp, body = postJSON(t, ts.URL+"/evalstream", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evalstream: status %d: %s", resp.StatusCode, body)
	}
	hdr, chunks, trailer := decodeStream(t, body)
	if hdr.Streamed {
		t.Fatal("rank-2 wavefront cannot stream, yet streamed=true")
	}
	if hdr.Fallback == "" {
		t.Fatal("fallback response must carry the rejection reason")
	}
	if len(chunks) != 1 {
		t.Fatalf("fallback must be a single chunk, got %d", len(chunks))
	}
	if len(chunks[0].Data) != len(er.Result.Data) {
		t.Fatalf("fallback chunk has %d elements, /eval %d", len(chunks[0].Data), len(er.Result.Data))
	}
	for i := range er.Result.Data {
		if math.Float64bits(chunks[0].Data[i]) != math.Float64bits(er.Result.Data[i]) {
			t.Fatalf("fallback diverges from /eval at element %d", i)
		}
	}
	if trailer.Tier == "stream" {
		t.Fatalf("fallback trailer claims tier=stream")
	}
	if trailer.PeakBytes != 0 {
		t.Fatalf("fallback must not report stream accounting, peak=%d", trailer.PeakBytes)
	}
}

// retryAfterSecs: scales with the backlog, clamps to [1, ceil(timeout)],
// and returns the full timeout when the server cannot promise progress.
func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		backlog int64
		perSec  float64
		timeout time.Duration
		want    int
	}{
		{backlog: 4, perSec: 2, timeout: 30 * time.Second, want: 2},
		{backlog: 100, perSec: 2, timeout: 30 * time.Second, want: 30}, // clamp high
		{backlog: 1, perSec: 1000, timeout: 30 * time.Second, want: 1}, // clamp low
		{backlog: 3, perSec: 2, timeout: 30 * time.Second, want: 2},    // ceil(1.5)
		{backlog: 5, perSec: 0, timeout: 30 * time.Second, want: 30},   // no rate: full timeout
		{backlog: 5, perSec: -1, timeout: 30 * time.Second, want: 30},
		{backlog: 5, perSec: 0, timeout: 0, want: 1}, // degenerate timeout still >= 1
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.backlog, c.perSec, c.timeout); got != c.want {
			t.Errorf("retryAfterSecs(%d, %v, %v) = %d, want %d", c.backlog, c.perSec, c.timeout, got, c.want)
		}
	}
}

// drainMeter feeds retryAfterSecs a real rate: after a burst of
// completions the estimate is positive and the derived Retry-After
// lands between the clamps instead of pinning to either end.
func TestDrainMeterRate(t *testing.T) {
	var m drainMeter
	for i := 0; i < 50; i++ {
		m.complete()
	}
	time.Sleep(drainWindow + 50*time.Millisecond)
	m.complete() // rolls the window, locking in the burst's rate
	rate := m.perSec()
	if rate <= 0 {
		t.Fatalf("rate = %v after 51 completions, want > 0", rate)
	}
	secs := retryAfterSecs(10*int64(rate), rate, time.Hour)
	if secs < 1 || secs > 11 {
		t.Fatalf("Retry-After %d for a 10-second backlog at %v/s", secs, rate)
	}
}

// Sustained overload with nothing draining: the shed response's
// Retry-After must reflect the stall (the full request timeout), not
// the old hardcoded 1 second.
func TestRetryAfterUnderSustainedOverload(t *testing.T) {
	const stallTimeout = 7 * time.Second
	s, ts := newTestServer(t, func(c *Config) {
		c.Concurrency = 1
		c.QueueDepth = 1
		c.Timeout = stallTimeout
	})
	req := compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 8}}

	// Pin the slot from outside; nothing ever completes, so the drain
	// rate stays zero for the whole test.
	s.sem <- struct{}{}
	queued := make(chan struct{})
	go func() {
		postJSON(t, ts.URL+"/compile", req)
		close(queued)
	}()
	testutil.WaitFor(t, "first request to queue", func() bool { return s.waiting.Load() == 1 })

	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts.URL+"/compile", req)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429", i, resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("request %d: bad Retry-After %q: %v", i, resp.Header.Get("Retry-After"), err)
		}
		if want := int(math.Ceil(stallTimeout.Seconds())); ra != want {
			t.Fatalf("request %d: Retry-After = %d under a total stall, want %d (the request timeout)", i, ra, want)
		}
	}

	<-s.sem
	<-queued
}
