package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"arraycomp/internal/testutil"
)

// A batch of N evaluations compiles once and returns, per item, the
// exact result N separate /eval calls would.
func TestEvalBatchMatchesSequentialEval(t *testing.T) {
	s, ts := newTestServer(t, nil)
	const n = 16
	base := compileRequest{
		Source: scaleSrc,
		Params: map[string]int64{"n": 64},
		Options: optionsJSON{
			InputBounds: map[string]boundsJSON{"b": {Lo: []int64{1}, Hi: []int64{64}}},
		},
	}

	// Sequential reference results, one /eval per seed.
	want := make([][]float64, n)
	for i := 0; i < n; i++ {
		req := evalRequest{compileRequest: base, evalContext: evalContext{Seed: int64(100 + i)}}
		resp, body := postJSON(t, ts.URL+"/eval", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eval %d: status %d: %s", i, resp.StatusCode, body)
		}
		var er evalResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		want[i] = er.Result.Data
	}

	breq := evalBatchRequest{compileRequest: base}
	for i := 0; i < n; i++ {
		breq.Evals = append(breq.Evals, evalContext{Seed: int64(100 + i)})
	}
	resp, body := postJSON(t, ts.URL+"/evalbatch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br evalBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Cache != "hit" {
		t.Fatalf("batch cache=%s, want hit (the sequential evals warmed it)", br.Cache)
	}
	if len(br.Results) != n {
		t.Fatalf("batch returned %d results, want %d", len(br.Results), n)
	}
	for i, item := range br.Results {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		if len(item.Result.Data) != len(want[i]) {
			t.Fatalf("item %d: %d elements, want %d", i, len(item.Result.Data), len(want[i]))
		}
		for j := range want[i] {
			if math.Float64bits(item.Result.Data[j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("item %d diverges from sequential /eval at element %d", i, j)
			}
		}
	}
	// Compile-once: n evals + 1 batch over one program = 1 miss total.
	if st := s.CacheStats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (batch must not recompile)", st.Misses)
	}
}

// A cold batch compiles exactly once even though all items race for
// the program.
func TestEvalBatchColdCompilesOnce(t *testing.T) {
	s, ts := newTestServer(t, nil)
	breq := evalBatchRequest{
		compileRequest: compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 24}},
		Evals:          []evalContext{{Seed: 1}, {Seed: 2}, {Seed: 3}, {Seed: 4}},
	}
	resp, body := postJSON(t, ts.URL+"/evalbatch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br evalBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Cache != "miss" {
		t.Fatalf("cold batch cache=%s, want miss", br.Cache)
	}
	if br.CompileNs <= 0 {
		t.Error("cold batch must report its compile cost")
	}
	if st := s.CacheStats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// One bad item fails that slot only; the batch still answers 200 with
// every other result intact.
func TestEvalBatchPerItemErrorIsolation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	breq := evalBatchRequest{
		compileRequest: compileRequest{
			Source: scaleSrc,
			Params: map[string]int64{"n": 8},
			Options: optionsJSON{
				InputBounds: map[string]boundsJSON{"b": {Lo: []int64{1}, Hi: []int64{8}}},
			},
		},
		Evals: []evalContext{
			{Seed: 1},
			{Inputs: map[string]arrayJSON{"b": {Lo: []int64{1}, Hi: []int64{8}, Data: []float64{1, 2}}}}, // short data
			{Seed: 3},
		},
	}
	resp, body := postJSON(t, ts.URL+"/evalbatch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (per-item failure must not fail the batch): %s", resp.StatusCode, body)
	}
	var br evalBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Error != "" || br.Results[2].Error != "" {
		t.Fatalf("healthy items failed: %q / %q", br.Results[0].Error, br.Results[2].Error)
	}
	if !strings.Contains(br.Results[1].Error, "data elements") {
		t.Fatalf("bad item error = %q, want an input-shape complaint", br.Results[1].Error)
	}
	if len(br.Results[0].Result.Data) != 8 || len(br.Results[2].Result.Data) != 8 {
		t.Fatal("healthy items missing results")
	}
}

// Batch shape limits: empty and over-limit batches are client errors.
func TestEvalBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatch = 4 })
	base := compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 8}}

	resp, body := postJSON(t, ts.URL+"/evalbatch", evalBatchRequest{compileRequest: base})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400: %s", resp.StatusCode, body)
	}

	over := evalBatchRequest{compileRequest: base}
	for i := 0; i < 5; i++ {
		over.Evals = append(over.Evals, evalContext{Seed: int64(i)})
	}
	resp, body = postJSON(t, ts.URL+"/evalbatch", over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "exceeds limit 4") {
		t.Fatalf("oversized batch error = %s, want the limit named", body)
	}
}

// Admission control: with the concurrency slot held and the queue at
// its watermark, the next request sheds immediately with 429 +
// Retry-After; once the slot frees, queued work completes and traffic
// below the watermark never sheds.
func TestAdmissionControlSheds(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Concurrency = 1
		c.QueueDepth = 1
	})
	req := compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 8}}

	// Occupy the single concurrency slot from outside.
	s.sem <- struct{}{}

	// First request queues (waiting=1, at the watermark).
	queued := make(chan *http.Response, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/compile", req)
		queued <- resp
	}()
	testutil.WaitFor(t, "first request to queue", func() bool { return s.waiting.Load() == 1 })

	// Second request is over the watermark: shed, not queued.
	resp, body := postJSON(t, ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over watermark: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}

	// Release the slot; the queued request must complete normally.
	<-s.sem
	qresp := <-queued
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("queued request: status %d, want 200", qresp.StatusCode)
	}

	// Below the watermark nothing sheds: a burst wider than the queue
	// but served sequentially never sees 429.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/compile", req)
			if resp.StatusCode == http.StatusTooManyRequests {
				// Allowed: concurrency 1 and queue 1 make bursts shed by
				// design. Not a failure — the zero-shed assertion below
				// uses sequential traffic.
				return
			}
		}()
	}
	wg.Wait()
	shedBefore := fetchShedCount(t, ts.URL, "compile")
	for i := 0; i < 8; i++ {
		resp, _ := postJSON(t, ts.URL+"/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sequential request %d: status %d", i, resp.StatusCode)
		}
	}
	if after := fetchShedCount(t, ts.URL, "compile"); after != shedBefore {
		t.Fatalf("sequential traffic below the watermark shed %d requests", after-shedBefore)
	}
	if shedBefore < 1 {
		t.Fatalf("shed counter = %d, want >= 1 (the 429 above must be counted)", shedBefore)
	}
}

// A batch of exactly MaxBatch items is legal: the limit check is a
// strict >, and the boundary must not regress to >=.
func TestEvalBatchExactlyMaxBatch(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatch = 4 })
	breq := evalBatchRequest{
		compileRequest: compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 8}},
	}
	for i := 0; i < 4; i++ {
		breq.Evals = append(breq.Evals, evalContext{Seed: int64(i)})
	}
	resp, body := postJSON(t, ts.URL+"/evalbatch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch of exactly MaxBatch: status %d, want 200: %s", resp.StatusCode, body)
	}
	var br evalBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(br.Results))
	}
	for i, item := range br.Results {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
	}
}

// An oversized item inside an otherwise-valid batch fails that item
// only — and, crucially, the admission-queue slot is released: after
// the batch returns, the server's load gauges read idle and the next
// request is admitted normally.
func TestEvalBatchBadItemReleasesSlot(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Concurrency = 1
		c.QueueDepth = 1
	})
	breq := evalBatchRequest{
		compileRequest: compileRequest{
			Source: scaleSrc,
			Params: map[string]int64{"n": 8},
			Options: optionsJSON{
				InputBounds: map[string]boundsJSON{"b": {Lo: []int64{1}, Hi: []int64{8}}},
			},
		},
		Evals: []evalContext{
			{Seed: 1},
			// Oversized: 64 elements shipped for 8-element bounds.
			{Inputs: map[string]arrayJSON{"b": {Lo: []int64{1}, Hi: []int64{64}, Data: make([]float64, 64)}}},
			{Seed: 3},
		},
	}
	resp, body := postJSON(t, ts.URL+"/evalbatch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
	var br evalBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[1].Error == "" {
		t.Fatal("oversized item must fail")
	}
	if br.Results[0].Error != "" || br.Results[2].Error != "" {
		t.Fatalf("oversized item poisoned siblings: %q / %q", br.Results[0].Error, br.Results[2].Error)
	}
	if len(br.Results[0].Result.Data) != 8 || len(br.Results[2].Result.Data) != 8 {
		t.Fatal("healthy siblings missing results")
	}

	// The admission slot must be back: load gauges at zero, and with
	// concurrency 1 + queue 1, a leaked slot would shed this request.
	testutil.WaitFor(t, "load gauges to return to idle", func() bool {
		waiting, inflight := s.DebugLoad()
		return waiting == 0 && inflight == 0
	})
	resp, body = postJSON(t, ts.URL+"/evalbatch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up batch: status %d (admission slot leaked?): %s", resp.StatusCode, body)
	}
}

// fetchShedCount scrapes haccd_shed_total{handler=...} from /metrics.
func fetchShedCount(t *testing.T, url, handler string) uint64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	prefix := fmt.Sprintf(`haccd_shed_total{handler="%s"} `, handler)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, prefix) {
			var n uint64
			if _, err := fmt.Sscan(strings.TrimPrefix(line, prefix), &n); err != nil {
				t.Fatalf("bad shed counter line %q: %v", line, err)
			}
			return n
		}
	}
	return 0
}
