// Package serve implements the haccd HTTP service: compile-through-
// cache plus execution on the process-wide warm worker pool,
// instrumented end to end. It lives here (not in cmd/haccd) so tests,
// benchmarks, and the soak harness can assemble in-process fleets;
// cmd/haccd is a flag-parsing shell around this package.
//
// One Server owns one plan cache (optionally backed by a persistent
// disk tier) and one metric registry. With peers configured, servers
// form a consistent-hash fleet: each request routes to the replica
// owning its cache key, so a plan compiles once fleet-wide and warms
// exactly one replica's cache instead of all of them.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"arraycomp/internal/analysis"
	"arraycomp/internal/cache"
	"arraycomp/internal/core"
	"arraycomp/internal/metrics"
	"arraycomp/internal/runtime"
	"arraycomp/internal/shard"
)

// Config tunes the service.
type Config struct {
	CacheEntries int
	CacheBytes   int64
	// CacheDir, when set, backs the memory LRU with a persistent disk
	// tier: certified thunkless plans are written there and a restarted
	// server restores them with zero compile-phase time.
	CacheDir    string
	MaxBody     int64
	Concurrency int
	// QueueDepth bounds how many requests may wait for a concurrency
	// slot before the server sheds load with 429 (0 = 2×Concurrency).
	QueueDepth int
	// MaxBatch caps the evaluations of one /evalbatch request
	// (0 = DefaultMaxBatch).
	MaxBatch int
	Timeout  time.Duration
	// Tier is the default execution-tier policy applied to requests
	// that do not set options.tier themselves; TierThreshold likewise.
	Tier          core.TierMode
	TierThreshold int
	// Self and Peers configure fleet sharding: Peers is the full
	// replica list (including Self) every replica must agree on, Self
	// is this replica's own entry. Empty Peers = standalone server.
	Self  string
	Peers []string
}

// DefaultMaxBatch caps /evalbatch sizes when Config.MaxBatch is 0.
const DefaultMaxBatch = 256

// DefaultConfig returns the standalone-server defaults.
func DefaultConfig() Config {
	return Config{
		CacheEntries: 1024,
		CacheBytes:   256 << 20,
		MaxBody:      16 << 20,
		Concurrency:  256,
		Timeout:      30 * time.Second,
	}
}

// forwardHeader marks a proxied request so the owner serves it locally
// even if its ring disagrees (mid-rollout membership skew); without it
// two replicas with different peer lists could proxy forever.
const forwardHeader = "X-Haccd-Forwarded"

// Server is one haccd replica.
type Server struct {
	cfg   Config
	cache *cache.Cache
	reg   *metrics.Registry
	sem   chan struct{} // concurrency limiter; buffered to cfg.Concurrency

	ring   *shard.Ring  // nil when standalone
	client *http.Client // peer proxy transport

	waiting atomic.Int64 // requests queued for a slot (admission control)
	drain   drainMeter   // completion-rate estimator for Retry-After

	reqTotal        *metrics.CounterVec   // by handler
	reqErrors       *metrics.CounterVec   // by handler
	reqSeconds      *metrics.HistogramVec // by handler
	shedTotal       *metrics.CounterVec   // 429s sent above the queue watermark, by handler
	proxyTotal      *metrics.CounterVec   // peer-routed requests, by outcome
	phaseSeconds    *metrics.HistogramVec // compile phases, observed on misses only
	evalSeconds     *metrics.Histogram    // pure plan execution time
	batchSize       *metrics.Histogram    // evaluations per /evalbatch request
	optTotal        *metrics.CounterVec   // optimization counters, by kind
	schedTotal      *metrics.CounterVec   // compiled loop schedules, by kind
	tierStats       *metrics.TierStats    // process-wide tiered-execution tallies
	verifyStats     *metrics.VerifyStats  // process-wide index-claim verification tallies
	streamRequests  *metrics.CounterVec   // /evalstream requests, by mode (streamed/fallback)
	streamChunks    *metrics.Counter      // result chunks shipped by /evalstream
	streamPeakBytes *metrics.Histogram    // peak resident bytes per streamed evaluation
}

// New assembles a server. The only failure mode is an unusable
// CacheDir.
func New(cfg Config) (*Server, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = DefaultConfig().Concurrency
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Concurrency
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	s := &Server{
		cfg:   cfg,
		cache: cache.New(cfg.CacheEntries, cfg.CacheBytes),
		reg:   metrics.NewRegistry(),
		sem:   make(chan struct{}, cfg.Concurrency),
	}
	if cfg.CacheDir != "" {
		if err := s.cache.EnableDisk(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	if len(cfg.Peers) > 0 {
		s.ring = shard.New(cfg.Peers, 0)
		s.client = &http.Client{Timeout: cfg.Timeout}
	}
	s.reqTotal = s.reg.NewCounterVec("haccd_requests_total", "Requests served, by handler.", "handler")
	s.reqErrors = s.reg.NewCounterVec("haccd_request_errors_total", "Requests that failed, by handler.", "handler")
	s.reqSeconds = s.reg.NewHistogramVec("haccd_request_seconds", "End-to-end request latency, by handler.", "handler", nil)
	s.shedTotal = s.reg.NewCounterVec("haccd_shed_total",
		"Requests shed with 429 because the admission queue was over its watermark, by handler.", "handler")
	s.proxyTotal = s.reg.NewCounterVec("haccd_proxy_total",
		"Requests routed to the owning peer, by outcome (forwarded = peer answered, fallback = peer failed and the request ran locally).", "outcome")
	s.phaseSeconds = s.reg.NewHistogramVec("haccd_compile_phase_seconds",
		"Compile time per phase, observed only when a request actually compiles (cache misses).", "phase", nil)
	s.evalSeconds = s.reg.NewHistogramM("haccd_eval_run_seconds", "Pure plan execution time of /eval requests.", nil)
	s.batchSize = s.reg.NewHistogramM("haccd_evalbatch_size", "Evaluations per /evalbatch request.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	s.optTotal = s.reg.NewCounterVec("haccd_opt_total",
		"Optimizations performed by compiles this process ran, by kind.", "kind")
	s.schedTotal = s.reg.NewCounterVec("haccd_schedules_total",
		"Loops compiled, by execution shape (sequential/shard/tile/wavefront/chains).", "kind")
	s.reg.NewCounterFunc("haccd_cache_hits_total", "Plan cache hits.", func() uint64 { return s.cache.Stats().Hits })
	s.reg.NewCounterFunc("haccd_cache_misses_total", "Plan cache misses (compiles).", func() uint64 { return s.cache.Stats().Misses })
	s.reg.NewCounterFunc("haccd_cache_evictions_total", "Plan cache LRU evictions.", func() uint64 { return s.cache.Stats().Evictions })
	s.reg.NewCounterFunc("haccd_cache_singleflight_waits_total",
		"Callers that waited on another request's in-flight compile of the same key.",
		func() uint64 { return s.cache.Stats().SingleflightWaits })
	s.reg.NewCounterFunc("haccd_cache_disk_hits_total",
		"Cache misses served by restoring a plan from the persistent disk tier.",
		func() uint64 { return s.cache.Stats().DiskHits })
	s.reg.NewCounterFunc("haccd_cache_disk_writes_total",
		"Compiled plans persisted to the disk tier.",
		func() uint64 { return s.cache.Stats().DiskWrites })
	s.reg.NewCounterFunc("haccd_cache_disk_discards_total",
		"Disk-tier entries rejected on load (corrupt, truncated, forged, or stale version) and deleted.",
		func() uint64 { return s.cache.Stats().DiskDiscards })
	s.reg.NewGaugeFunc("haccd_cache_entries", "Plans currently cached.", func() float64 { return float64(s.cache.Stats().Entries) })
	s.reg.NewGaugeFunc("haccd_cache_bytes", "Charged bytes currently cached.", func() float64 { return float64(s.cache.Stats().Bytes) })
	s.reg.NewGaugeFunc("haccd_cache_native_entries", "Cached plans currently served by the native tier.",
		func() float64 { return float64(s.cache.Stats().NativeEntries) })
	s.reg.NewGaugeFunc("haccd_inflight_requests", "Requests currently holding a concurrency slot.", func() float64 { return float64(len(s.sem)) })
	s.reg.NewGaugeFunc("haccd_queued_requests", "Requests currently waiting for a concurrency slot.",
		func() float64 { return float64(s.waiting.Load()) })
	s.tierStats = &metrics.TierStats{}
	s.reg.NewCounterFuncVec("haccd_tier_runs_total",
		"Evaluations of tier-enabled plans, by the tier that served them (plans compiled with tier off are not tallied).", "tier",
		func() map[string]uint64 {
			return map[string]uint64{
				string(core.TierThunked):     uint64(s.tierStats.ThunkedRuns.Load()),
				string(core.TierInterpreted): uint64(s.tierStats.InterpRuns.Load()),
				string(core.TierNative):      uint64(s.tierStats.NativeRuns.Load()),
			}
		})
	s.reg.NewCounterFunc("haccd_tier_promotions_total", "Successful interpreted-to-native tier promotions.",
		func() uint64 { return uint64(s.tierStats.Promotions.Load()) })
	s.reg.NewCounterFunc("haccd_tier_promote_failures_total", "Native builds that failed; the plan keeps serving interpreted.",
		func() uint64 { return uint64(s.tierStats.PromoteFailures.Load()) })
	s.reg.NewGaugeFunc("haccd_tier_promote_seconds_total", "Wall time spent in background native builds.",
		func() float64 { return float64(s.tierStats.PromoteNs.Load()) / 1e9 })
	s.streamRequests = s.reg.NewCounterVec("haccd_stream_requests_total",
		"/evalstream evaluations, by mode (streamed = chunked pipeline, fallback = materialized single chunk).", "mode")
	s.streamChunks = s.reg.NewCounter("haccd_stream_chunks_total",
		"Result chunks shipped by /evalstream responses.")
	s.streamPeakBytes = s.reg.NewHistogramM("haccd_stream_peak_bytes",
		"Peak resident bytes (inputs + windows + in-flight chunks) per streamed evaluation.",
		[]float64{1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30})
	s.verifyStats = &metrics.VerifyStats{}
	s.reg.NewCounterFunc("haccd_idxprop_verified_total",
		"Runtime index-claim verifications that passed, admitting the unchecked parallel fast path.",
		func() uint64 { return uint64(s.verifyStats.Verified.Load()) })
	s.reg.NewCounterFunc("haccd_idxprop_verify_failures_total",
		"Runtime index-claim verifications that failed, routing execution to the checked sequential fallback.",
		func() uint64 { return uint64(s.verifyStats.Failed.Load()) })
	return s, nil
}

// CacheStats snapshots the plan cache counters (shutdown logging).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// Handler builds the routed, limited, timeout-wrapped handler chain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/compile", s.instrument("compile", s.handleCompile))
	mux.Handle("/eval", s.instrument("eval", s.handleEval))
	mux.Handle("/evalbatch", s.instrument("evalbatch", s.handleEvalBatch))
	// The timeout wrapper bounds every response, including queueing
	// time spent waiting for a concurrency slot.
	wrapped := http.TimeoutHandler(mux, s.cfg.Timeout, `{"error":"request timed out"}`)
	// /evalstream bypasses the timeout wrapper: TimeoutHandler buffers
	// the whole response body, which would re-materialize exactly the
	// O(n) the chunked protocol exists to avoid. The admission limiter
	// and body cap still apply via instrument.
	outer := http.NewServeMux()
	outer.Handle("/evalstream", s.instrument("evalstream", s.handleEvalStream))
	outer.Handle("/", wrapped)
	return outer
}

// instrument wraps a JSON handler with admission control, the
// concurrency limiter, the body-size cap, and per-handler metrics.
//
// Admission is a bounded queue ahead of the limiter: up to QueueDepth
// requests may block waiting for a slot; past that watermark the
// server sheds immediately with 429 + Retry-After rather than building
// an unbounded convoy that times out wholesale. Shedding fast keeps
// the queue short enough that admitted requests still meet the
// deadline — the standard load-shedding argument.
func (s *Server) instrument(name string, fn func(w http.ResponseWriter, r *http.Request) (int, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			s.reqErrors.With(name).Inc()
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
			s.waiting.Add(-1)
			s.shedTotal.With(name).Inc()
			s.reqErrors.With(name).Inc()
			// Tell the client how long the backlog actually takes to
			// drain at the observed completion rate, not a flat guess: a
			// lightly-backed-up server invites a quick retry, a stalled
			// one backs clients off toward the request timeout.
			backlog := s.waiting.Load() + int64(len(s.sem))
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(backlog, s.drain.perSec(), s.cfg.Timeout)))
			httpError(w, http.StatusTooManyRequests, fmt.Errorf("server overloaded; retry later"))
			return
		}
		select {
		case s.sem <- struct{}{}:
			s.waiting.Add(-1)
			defer func() { <-s.sem; s.drain.complete() }()
		case <-r.Context().Done():
			s.waiting.Add(-1)
			s.reqErrors.With(name).Inc()
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server at concurrency limit"))
			return
		}
		t0 := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
		code, err := fn(w, r)
		s.reqSeconds.With(name).Observe(time.Since(t0).Seconds())
		s.reqTotal.With(name).Inc()
		if err != nil {
			s.reqErrors.With(name).Inc()
			httpError(w, code, err)
		}
	})
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// --- request/response shapes ---

// boundsJSON is one array's bounds: lo/hi per dimension.
type boundsJSON struct {
	Lo []int64 `json:"lo"`
	Hi []int64 `json:"hi"`
}

// optionsJSON mirrors the semantically relevant core.Options.
type optionsJSON struct {
	Parallel     bool                  `json:"parallel,omitempty"`
	Workers      int                   `json:"workers,omitempty"`
	ForceThunked bool                  `json:"force_thunked,omitempty"`
	NoOptimize   bool                  `json:"no_optimize,omitempty"`
	NoStencil    bool                  `json:"no_stencil,omitempty"`
	NoLinearize  bool                  `json:"no_linearize,omitempty"`
	Certify      bool                  `json:"certify,omitempty"`
	InputBounds  map[string]boundsJSON `json:"input_bounds,omitempty"`
	// Tier is the execution-tier policy: "off", "auto", or "native".
	// Empty means "use the server default" (the -tier flag), which is
	// how a fleet operator turns tiering on without touching clients.
	Tier          string `json:"tier,omitempty"`
	TierThreshold int    `json:"tier_threshold,omitempty"`
	// TierSync makes auto promotion happen inline at the threshold
	// call instead of in the background — slower for that one request,
	// but deterministic; meant for tests and batch clients.
	TierSync bool `json:"tier_sync,omitempty"`
	// Stream requests the bounded-memory chunked execution engine;
	// /evalstream forces it on. Programs the window-legality analysis
	// rejects run materialized (the response says which happened).
	Stream bool `json:"stream,omitempty"`
}

func (o optionsJSON) coreOptions() (core.Options, error) {
	opts := core.Options{
		Parallel:     o.Parallel,
		Workers:      o.Workers,
		ForceThunked: o.ForceThunked,
		NoOptimize:   o.NoOptimize,
		NoStencil:    o.NoStencil,
		NoLinearize:  o.NoLinearize,
		Certify:      o.Certify,
		Stream:       o.Stream,
	}
	tier, err := core.ParseTierMode(o.Tier)
	if err != nil {
		return opts, err
	}
	opts.Tier = tier
	opts.TierThreshold = o.TierThreshold
	opts.TierSync = o.TierSync
	if len(o.InputBounds) > 0 {
		opts.InputBounds = map[string]analysis.ArrayBounds{}
		for name, b := range o.InputBounds {
			opts.InputBounds[name] = cache.InputBoundsOf(b.Lo, b.Hi)
		}
	}
	return opts, nil
}

// compileRequest is the body of POST /compile (and the compile part
// of POST /eval and /evalbatch).
type compileRequest struct {
	Source  string           `json:"source"`
	Params  map[string]int64 `json:"params"`
	Options optionsJSON      `json:"options"`
}

// arrayJSON carries an input or result array.
type arrayJSON struct {
	Lo   []int64   `json:"lo"`
	Hi   []int64   `json:"hi"`
	Data []float64 `json:"data"`
}

// evalContext is one evaluation's inputs: explicit arrays plus the
// seed used to fill the declared-but-unlisted ones.
type evalContext struct {
	Inputs map[string]arrayJSON `json:"inputs,omitempty"`
	Seed   int64                `json:"seed,omitempty"`
}

// evalRequest is the body of POST /eval. Inputs may be given
// explicitly; any input array declared in options.input_bounds but
// not listed is filled with deterministic pseudo-random data derived
// from Seed and the array name.
type evalRequest struct {
	compileRequest
	evalContext
}

// evalBatchRequest is the body of POST /evalbatch: one program, N
// evaluation contexts. The program compiles (or hits) once; the
// evaluations dispatch concurrently onto the warm worker pool.
type evalBatchRequest struct {
	compileRequest
	Evals []evalContext `json:"evals"`
}

// reportJSON is the compile-time record attached to the cached plan.
type reportJSON struct {
	PhasesNs map[string]int64  `json:"phases_ns"`
	Counters metrics.Counters  `json:"counters"`
	Modes    map[string]string `json:"modes"`
	Notes    []string          `json:"notes,omitempty"`
}

// compileResponse answers POST /compile. CompileNs and PhasesNs are
// the compile cost paid by THIS request: zero / absent on a cache
// hit. Cache is "miss" (compiled now), "hit" (memory), or "disk"
// (restored from the persistent tier — no compile phase ran, only the
// load phase reported in PhasesNs).
type compileResponse struct {
	Key       string           `json:"key"`
	Cache     string           `json:"cache"` // "hit" | "miss" | "disk"
	CompileNs int64            `json:"compile_ns"`
	PhasesNs  map[string]int64 `json:"phases_ns,omitempty"`
	Report    reportJSON       `json:"report"`
}

// evalResult is one evaluation's outcome inside /eval and /evalbatch
// responses. Tier reports which execution tier served THIS evaluation
// ("thunked", "interpreted", or "native") — under an auto policy it
// flips to native once the background build lands, so clients can
// watch a hot plan tier up across calls.
type evalResult struct {
	Result arrayJSON `json:"result"`
	EvalNs int64     `json:"eval_ns"`
	Tier   string    `json:"tier"`
}

// evalResponse answers POST /eval.
type evalResponse struct {
	compileResponse
	evalResult
}

// batchItem is one evaluation's slot in an /evalbatch response:
// either a result or an error, in request order.
type batchItem struct {
	evalResult
	Error string `json:"error,omitempty"`
}

// evalBatchResponse answers POST /evalbatch. The compile part is
// shared — it was paid (or skipped) once for the whole batch.
type evalBatchResponse struct {
	compileResponse
	Results []batchItem `json:"results"`
}

// --- handlers ---

// compileThrough serves the compile part of every endpoint: cache
// lookup with singleflight fill and a disk-tier fallthrough, recording
// phase metrics only when this request actually compiled or loaded.
func (s *Server) compileThrough(req compileRequest) (*cache.Entry, compileResponse, int, error) {
	if req.Source == "" {
		return nil, compileResponse{}, http.StatusBadRequest, fmt.Errorf("missing source")
	}
	opts, err := req.Options.coreOptions()
	if err != nil {
		return nil, compileResponse{}, http.StatusBadRequest, err
	}
	if req.Options.Tier == "" {
		// No per-request policy: apply the server default. This happens
		// before the cache key is computed, so a default-tier server
		// and an explicit-tier client share entries.
		opts.Tier = s.cfg.Tier
		opts.TierThreshold = s.cfg.TierThreshold
	}
	// The stats sinks are process-wide and deliberately not part of the
	// cache key.
	opts.TierStats = s.tierStats
	opts.VerifyStats = s.verifyStats
	entry, origin, err := s.cache.GetOrCompile(req.Source, req.Params, opts)
	if err != nil {
		return nil, compileResponse{}, http.StatusUnprocessableEntity, err
	}
	resp := compileResponse{Key: entry.Key, Report: reportOf(entry)}
	switch origin {
	case cache.OriginMemory:
		// Warm path: no compile phase ran for this request; record
		// nothing in the phase histograms and report zero cost.
		resp.Cache = "hit"
		return entry, resp, 0, nil
	case cache.OriginDisk:
		resp.Cache = "disk"
	default:
		resp.Cache = "miss"
	}
	// Cold (compiled) or disk-restored (paid only the load phase):
	// either way this request did the work its report describes.
	resp.CompileNs = entry.Report.Total().Nanoseconds()
	resp.PhasesNs = map[string]int64{}
	for ph, d := range entry.Report.Phases {
		resp.PhasesNs[ph] = d.Nanoseconds()
		s.phaseSeconds.With(ph).Observe(d.Seconds())
	}
	if origin == cache.OriginCompile {
		s.recordOptCounters(entry.Report.Counters)
	}
	return entry, resp, 0, nil
}

// recordOptCounters folds one compilation's optimization counters into
// the process-wide metric families.
func (s *Server) recordOptCounters(c metrics.Counters) {
	s.optTotal.With("collision_checks_elided").Add(uint64(c.CollisionChecksElided))
	s.optTotal.With("empties_checks_elided").Add(uint64(c.EmptiesChecksElided))
	s.optTotal.With("thunks_avoided").Add(uint64(c.ThunksAvoided))
	s.optTotal.With("thunked_defs").Add(uint64(c.ThunkedDefs))
	s.optTotal.With("loops_fused").Add(uint64(c.LoopsFused))
	for kind, n := range c.SchedulesByKind {
		s.schedTotal.With(kind).Add(uint64(n))
	}
}

func reportOf(e *cache.Entry) reportJSON {
	rj := reportJSON{
		PhasesNs: map[string]int64{},
		Counters: e.Report.Counters,
		Modes:    map[string]string{},
		Notes:    e.Program.Notes,
	}
	for ph, d := range e.Report.Phases {
		rj.PhasesNs[ph] = d.Nanoseconds()
	}
	for name, cd := range e.Program.Defs {
		rj.Modes[name] = cd.Mode()
	}
	return rj
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) (int, error) {
	var req compileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return decodeErrorStatus(err), fmt.Errorf("bad request body: %w", err)
	}
	if s.maybeProxy(w, r, req, &req) {
		return 0, nil
	}
	_, resp, code, err := s.compileThrough(req)
	if err != nil {
		return code, err
	}
	return 0, writeJSON(w, resp)
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) (int, error) {
	var req evalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return decodeErrorStatus(err), fmt.Errorf("bad request body: %w", err)
	}
	if s.maybeProxy(w, r, req.compileRequest, &req) {
		return 0, nil
	}
	entry, cresp, code, err := s.compileThrough(req.compileRequest)
	if err != nil {
		return code, err
	}
	res, code, err := s.runOne(entry, req.Options, req.evalContext)
	if err != nil {
		return code, err
	}
	return 0, writeJSON(w, evalResponse{compileResponse: cresp, evalResult: *res})
}

// handleEvalBatch compiles once and dispatches every evaluation
// concurrently; the executor's warm worker pool and the scheduler
// spread them across cores. A per-item failure (bad input bounds,
// runtime check violation) fails that item, not the batch.
func (s *Server) handleEvalBatch(w http.ResponseWriter, r *http.Request) (int, error) {
	var req evalBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return decodeErrorStatus(err), fmt.Errorf("bad request body: %w", err)
	}
	if len(req.Evals) == 0 {
		return http.StatusBadRequest, fmt.Errorf("missing evals")
	}
	if len(req.Evals) > s.cfg.MaxBatch {
		return http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(req.Evals), s.cfg.MaxBatch)
	}
	if s.maybeProxy(w, r, req.compileRequest, &req) {
		return 0, nil
	}
	entry, cresp, code, err := s.compileThrough(req.compileRequest)
	if err != nil {
		return code, err
	}
	s.batchSize.Observe(float64(len(req.Evals)))
	results := make([]batchItem, len(req.Evals))
	var wg sync.WaitGroup
	for i := range req.Evals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A panicking evaluation fails its own slot, never the
			// batch (and never the process: an unrecovered panic in a
			// goroutine would take down the server with the admission
			// slot still held).
			defer func() {
				if r := recover(); r != nil {
					results[i].Error = fmt.Sprintf("panic: %v", r)
				}
			}()
			res, _, err := s.runOne(entry, req.Options, req.Evals[i])
			if err != nil {
				results[i].Error = err.Error()
				return
			}
			results[i].evalResult = *res
		}(i)
	}
	wg.Wait()
	return 0, writeJSON(w, evalBatchResponse{compileResponse: cresp, Results: results})
}

// runOne executes the cached program under one evaluation context.
// Malformed inputs are the client's fault (400); a failed run is an
// unprocessable program (422).
func (s *Server) runOne(entry *cache.Entry, opts optionsJSON, ec evalContext) (*evalResult, int, error) {
	inputs, err := buildInputs(opts, ec)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	t0 := time.Now()
	out, tier, err := entry.Program.RunTiered(inputs)
	evalNs := time.Since(t0)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	s.evalSeconds.Observe(evalNs.Seconds())
	return &evalResult{
		Result: arrayJSON{Lo: out.B.Lo, Hi: out.B.Hi, Data: out.Data},
		EvalNs: evalNs.Nanoseconds(),
		Tier:   string(tier),
	}, 0, nil
}

// buildInputs materializes one run's input arrays: explicit data
// first, then deterministic pseudo-random fill (seeded per array
// name) for every declared input without explicit data — the same
// convention as `hacc run -seed`.
func buildInputs(opts optionsJSON, ec evalContext) (map[string]*runtime.Strict, error) {
	inputs := map[string]*runtime.Strict{}
	for name, a := range ec.Inputs {
		b := runtime.Bounds{Lo: a.Lo, Hi: a.Hi}
		if got, want := int64(len(a.Data)), b.Size(); got != want {
			return nil, fmt.Errorf("input %q: %d data elements for bounds of size %d", name, got, want)
		}
		arr := runtime.NewStrict(b)
		copy(arr.Data, a.Data)
		inputs[name] = arr
	}
	for name, b := range opts.InputBounds {
		if _, ok := inputs[name]; ok {
			continue
		}
		arr := runtime.NewStrict(runtime.Bounds{Lo: b.Lo, Hi: b.Hi})
		rng := rand.New(rand.NewSource(ec.Seed ^ nameSeed(name)))
		for i := range arr.Data {
			arr.Data[i] = rng.Float64()
		}
		inputs[name] = arr
	}
	return inputs, nil
}

// nameSeed derives a per-array seed component so generated inputs are
// independent of map iteration order.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// decodeErrorStatus maps body-decode failures: an over-cap body
// surfaces as 413, everything else as 400.
func decodeErrorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// DebugLoad reports the instantaneous admission-queue length and
// in-flight request count. Test-only observability hook.
func (s *Server) DebugLoad() (waiting, inflight int64) {
	return s.waiting.Load(), int64(len(s.sem))
}
