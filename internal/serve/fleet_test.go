package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"arraycomp/internal/cache"
	"arraycomp/internal/core"
)

// fleet is a set of in-process replicas sharing one peer list.
type fleet struct {
	servers []*Server
	ts      []*httptest.Server
	addrs   []string
}

// newFleet starts n replicas on real loopback listeners. The
// addresses must exist before the servers (the ring is built from
// them), so listeners are bound first and handed to httptest.
func newFleet(t *testing.T, n int, mut func(i int, c *Config)) *fleet {
	t.Helper()
	f := &fleet{}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		f.addrs = append(f.addrs, l.Addr().String())
	}
	for i := 0; i < n; i++ {
		cfg := DefaultConfig()
		cfg.CacheEntries = 64
		cfg.Peers = append([]string(nil), f.addrs...)
		cfg.Self = f.addrs[i]
		if mut != nil {
			mut(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.ts = append(f.ts, ts)
	}
	return f
}

func (f *fleet) url(i int) string { return "http://" + f.addrs[i] }

// totalStats sums a counter across replicas.
func (f *fleet) totalMisses() (total uint64) {
	for _, s := range f.servers {
		total += s.CacheStats().Misses
	}
	return
}

func fleetSrc(i int) string {
	return fmt.Sprintf(`a = array (1,n) [ j := j*%d | j <- [1..n] ]`, i+1)
}

// One program sent to every replica compiles exactly once fleet-wide:
// non-owners proxy to the owner, whose cache warms on the first call.
func TestFleetCompilesOnceFleetwide(t *testing.T) {
	f := newFleet(t, 3, nil)
	req := compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 16}}

	for round := 0; round < 2; round++ {
		for i := range f.servers {
			resp, body := postJSON(t, f.url(i)+"/compile", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d replica %d: status %d: %s", round, i, resp.StatusCode, body)
			}
			var cr compileResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Fatal(err)
			}
			if (round > 0 || i > 0) && cr.Cache != "hit" {
				t.Fatalf("round %d replica %d: cache=%s, want hit (owner already warm)", round, i, cr.Cache)
			}
		}
	}
	if got := f.totalMisses(); got != 1 {
		t.Fatalf("fleet-wide misses = %d, want exactly 1 compile for 6 requests", got)
	}
	// Exactly one replica owns the plan.
	owners := 0
	for _, s := range f.servers {
		if s.CacheStats().Entries == 1 {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d replicas hold the plan, want exactly 1", owners)
	}
}

// Distinct programs spread across owners, and every replica answers
// for every program (routing, not redirection).
func TestFleetRoutesAcrossOwners(t *testing.T) {
	f := newFleet(t, 3, nil)
	const programs = 12
	for p := 0; p < programs; p++ {
		req := evalRequest{compileRequest: compileRequest{Source: fleetSrc(p), Params: map[string]int64{"n": 8}}}
		// Ask a different replica each time; results must be identical
		// regardless of which replica fields the request.
		var want []float64
		for i := range f.servers {
			resp, body := postJSON(t, f.url(i)+"/eval", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("program %d via replica %d: status %d: %s", p, i, resp.StatusCode, body)
			}
			var er evalResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = er.Result.Data
				continue
			}
			for j := range want {
				if math.Float64bits(want[j]) != math.Float64bits(er.Result.Data[j]) {
					t.Fatalf("program %d: replica %d result diverges at %d", p, i, j)
				}
			}
		}
	}
	if got := f.totalMisses(); got != programs {
		t.Fatalf("fleet-wide misses = %d, want %d (one per program)", got, programs)
	}
	// With 12 keys on a 3-node ring, at least two replicas should own
	// something (all-on-one would mean the ring is degenerate).
	owners := 0
	for _, s := range f.servers {
		if s.CacheStats().Entries > 0 {
			owners++
		}
	}
	if owners < 2 {
		t.Fatalf("only %d replicas own plans across %d programs", owners, programs)
	}
}

// A forwarded request is served locally by the receiver even if its
// ring disagrees — the loop-prevention header in action. Simulated by
// a replica whose peer list names only the OTHER replica as owner of
// everything (single-peer ring that is not itself).
func TestFleetForwardHeaderPreventsLoops(t *testing.T) {
	// Replica 0's ring says replica 1 owns everything; replica 1's ring
	// says replica 0 owns everything. Without loop prevention every
	// request would bounce forever.
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for i := range listeners {
		cfg := DefaultConfig()
		cfg.CacheEntries = 16
		cfg.Self = addrs[i]
		cfg.Peers = []string{addrs[1-i]} // deliberately excludes self
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
	}
	req := compileRequest{Source: wavefrontSrc, Params: map[string]int64{"n": 8}}
	resp, body := postJSON(t, "http://"+addrs[0]+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (a proxy loop would time out): %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Haccd-Served-By"); got != addrs[1] {
		t.Fatalf("served by %q, want the one-hop peer %s", got, addrs[1])
	}
}

// A dead owner degrades to a local compile, not an error.
func TestFleetLocalFallbackOnDeadPeer(t *testing.T) {
	f := newFleet(t, 3, nil)
	// Find a program owned by replica 2, asking replica 0.
	var req compileRequest
	for p := 0; ; p++ {
		if p > 200 {
			t.Fatal("no program hashed to replica 2")
		}
		cand := compileRequest{Source: fleetSrc(p), Params: map[string]int64{"n": 8}}
		key, err := f.servers[0].requestKey(cand)
		if err != nil {
			t.Fatal(err)
		}
		if f.servers[0].ring.Owner(key) == f.addrs[2] {
			req = cand
			break
		}
	}
	f.ts[2].Close() // kill the owner
	resp, body := postJSON(t, f.url(0)+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s, want local fallback to succeed", resp.StatusCode, body)
	}
	var cr compileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Cache != "miss" {
		t.Fatalf("cache=%s, want a local miss (the dead owner could not serve)", cr.Cache)
	}
	if f.servers[0].CacheStats().Entries != 1 {
		t.Fatal("fallback compile did not warm the local cache")
	}
	// Metrics record the fallback.
	resp2, err := http.Get(f.url(0) + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	metricsBody, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metricsBody), `haccd_proxy_total{outcome="fallback"} 1`) {
		t.Error("metrics missing the proxy fallback count")
	}
}

// Warm-replica routing with the disk tier underneath: a restarted
// owner serves its old working set from disk, and the whole fleet sees
// "disk" then "hit" — never a recompile.
func TestFleetDiskWarmRestart(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	mut := func(i int, c *Config) { c.CacheDir = dirs[i] }
	f := newFleet(t, 3, mut)
	req := compileRequest{
		Source:  wavefrontSrc,
		Params:  map[string]int64{"n": 16},
		Options: optionsJSON{Certify: true},
	}
	resp, body := postJSON(t, f.url(0)+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// "Restart" the fleet: same addresses cannot be rebound portably,
	// so restart at the cache level — fresh servers over the same cache
	// directories — and drive the owner directly.
	var ownerIdx int
	key, err := f.servers[0].requestKey(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range f.addrs {
		if a == f.servers[0].ring.Owner(key) {
			ownerIdx = i
		}
	}
	cfg := DefaultConfig()
	cfg.CacheEntries = 64
	cfg.CacheDir = dirs[ownerIdx]
	restarted, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(restarted.Handler())
	t.Cleanup(ts.Close)
	resp, body = postJSON(t, ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted owner: status %d: %s", resp.StatusCode, body)
	}
	var cr compileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Cache != "disk" {
		t.Fatalf("restarted owner cache=%s, want disk (plan persisted before restart)", cr.Cache)
	}
	for _, ph := range []string{"parse", "analyze", "plan", "lower", "optimize", "certify"} {
		if ns := cr.PhasesNs[ph]; ns != 0 {
			t.Errorf("restarted owner paid %dns of %s; disk restore must pay zero compile phases", ns, ph)
		}
	}
	if cr.PhasesNs["load"] <= 0 {
		t.Error("disk restore must report the load phase")
	}
	if _, origin, _ := restarted.cache.GetOrCompile(req.Source, req.Params, mustOpts(t, req, restarted)); origin != cache.OriginMemory {
		t.Fatalf("second fetch origin=%v, want memory", origin)
	}
}

func mustOpts(t *testing.T, req compileRequest, s *Server) core.Options {
	t.Helper()
	opts, err := req.Options.coreOptions()
	if err != nil {
		t.Fatal(err)
	}
	if req.Options.Tier == "" {
		opts.Tier = s.cfg.Tier
		opts.TierThreshold = s.cfg.TierThreshold
	}
	opts.TierStats = s.tierStats
	return opts
}
