package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"arraycomp/internal/cache"
)

// Fleet routing. Every replica computes the same content address a
// request would cache under and consults the same ring; the replica
// owning the key serves it (compiling at most once fleet-wide), every
// other replica proxies. The proxy carries the forward marker so the
// owner always serves locally — one hop, never a loop, even when two
// replicas briefly disagree about membership mid-rollout.
//
// Failure policy: if the owner is unreachable, answers 5xx, or is
// itself shedding (429), the request runs locally instead. A dead
// peer degrades the fleet to extra compiles — never to refused
// traffic the local replica could have served.

// requestKey resolves the request exactly as compileThrough will
// (server-default tier applied before keying) and returns its cache
// key.
func (s *Server) requestKey(req compileRequest) (string, error) {
	opts, err := req.Options.coreOptions()
	if err != nil {
		return "", err
	}
	if req.Options.Tier == "" {
		opts.Tier = s.cfg.Tier
		opts.TierThreshold = s.cfg.TierThreshold
	}
	return cache.Key(req.Source, req.Params, opts), nil
}

// maybeProxy routes the request to the replica owning its cache key.
// done=true means the peer's response (any status < 500 except 429)
// was already written. done=false means the caller must serve the
// request locally: this replica owns the key, the request was already
// forwarded once, the fleet is not configured, or the owner failed.
// full is the decoded request, re-serialized for the forwarded body.
func (s *Server) maybeProxy(w http.ResponseWriter, r *http.Request, creq compileRequest, full any) (done bool) {
	if s.ring == nil || r.Header.Get(forwardHeader) != "" {
		return false
	}
	key, err := s.requestKey(creq)
	if err != nil {
		// Malformed options: serve locally so the local handler
		// produces the proper 400.
		return false
	}
	owner := s.ring.Owner(key)
	if owner == "" || owner == s.cfg.Self {
		return false
	}
	body, err := json.Marshal(full)
	if err != nil {
		return false
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, ownerURL(owner)+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardHeader, s.cfg.Self)
	resp, err := s.client.Do(preq)
	if err != nil {
		s.proxyTotal.With("fallback").Inc()
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= http.StatusInternalServerError || resp.StatusCode == http.StatusTooManyRequests {
		// Owner down or shedding: serve locally rather than bounce the
		// client. The local compile is the price of the peer's outage.
		s.proxyTotal.With("fallback").Inc()
		return false
	}
	s.proxyTotal.With("forwarded").Inc()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set("X-Haccd-Served-By", owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// ownerURL turns a peer list entry into a base URL; bare host:port
// entries get the http scheme.
func ownerURL(owner string) string {
	if strings.Contains(owner, "://") {
		return owner
	}
	return "http://" + owner
}
