package certify

import (
	"arraycomp/internal/deptest"
)

// The shadow-domain witness search. A battery of per-dimension
// Problems over one combined loop list describes a reference pair
// completely: the pair touches the same element iff every dimension's
// equation holds simultaneously at one (x, y) point. The search
// enumerates the real iteration domain with every loop clamped to
// ShadowClamp, entirely independently of the closed-form tests it is
// auditing — a deliberately dumb, obviously-correct enumeration, with
// only interval pruning (computed here by direct enumeration, not by
// the Banerjee formulas under test) for speed.

// searcher carries the recursion state of one witness search.
type searcher struct {
	probs  []deptest.Problem
	v      deptest.Vector
	clamp  []int64
	x, y   []int64
	delta  []int64
	target []int64
	// suffix[k][d] bounds the achievable Σ_{j≥k} term_j for problem d
	// over the clamped admitted domain.
	suffix [][]deptest.Interval
	budget int
	sat    bool // some branch skipped due to saturating arithmetic
	out    bool // budget exhausted
}

// SearchWitness looks for a simultaneous integer solution of all
// problems under direction vector v inside the shadow domain. It
// returns the witness (if any), whether one was found, and whether
// the search exhaustively covered the full (unclamped) domain — only
// then does "not found" certify impossibility outright.
//
// All problems must share one loop structure (bounds, sharing); this
// holds by construction for the per-dimension batteries the analysis
// layer builds. Mismatched batteries return (no witness, not
// exhaustive).
func SearchWitness(probs []deptest.Problem, v deptest.Vector) (Witness, bool, bool) {
	if len(probs) == 0 {
		return Witness{}, false, false
	}
	n := probs[0].NumLoops()
	if len(v) != n {
		return Witness{}, false, false
	}
	for _, p := range probs {
		if p.NumLoops() != n {
			return Witness{}, false, false
		}
	}
	// Empty domain: exhaustively no solution.
	for k := 0; k < n; k++ {
		if probs[0].Bound[k] < 1 {
			return Witness{}, false, true
		}
	}
	s := &searcher{
		probs:  probs,
		v:      v,
		clamp:  make([]int64, n),
		x:      make([]int64, n),
		y:      make([]int64, n),
		delta:  make([]int64, len(probs)),
		target: make([]int64, len(probs)),
		budget: shadowBudget,
	}
	covered := true
	for k := 0; k < n; k++ {
		s.clamp[k] = probs[0].Bound[k]
		if s.clamp[k] > ShadowClamp {
			s.clamp[k] = ShadowClamp
			covered = false
		}
	}
	// Pre-shrink until the estimated point count fits the budget,
	// halving the largest clamp first.
	for s.estimate() > shadowBudget {
		maxK := 0
		for k := 1; k < n; k++ {
			if s.clamp[k] > s.clamp[maxK] {
				maxK = k
			}
		}
		if s.clamp[maxK] <= 1 {
			break
		}
		s.clamp[maxK] /= 2
		covered = false
	}
	for d, p := range probs {
		delta, exact := p.DeltaSat()
		if !exact {
			// The equation's constant is unrepresentable; no exact
			// witness can balance it and absence proves nothing.
			return Witness{}, false, false
		}
		s.delta[d] = delta
		s.target[d] = delta
	}
	s.buildSuffix()
	found := s.solve(0)
	exhaustive := covered && !s.sat && !s.out
	if !found {
		return Witness{}, false, exhaustive
	}
	w := Witness{X: append([]int64(nil), s.x...), Y: append([]int64(nil), s.y...)}
	return w, true, exhaustive
}

// pairs enumerates the admitted (x, y) values of loop k over the
// clamped domain, calling fn for each until it returns true.
func (s *searcher) pairs(k int, fn func(x, y int64) bool) bool {
	p0 := s.probs[0]
	m := s.clamp[k]
	if !p0.Shared[k] {
		// Only the side with a nonzero coefficient matters; the other
		// reference is not surrounded by this loop at all and its
		// position is fixed arbitrarily at 1.
		varyX := false
		for _, p := range s.probs {
			if p.A[k] != 0 {
				varyX = true
			}
		}
		for t := int64(1); t <= m; t++ {
			if varyX {
				if fn(t, 1) {
					return true
				}
			} else {
				if fn(1, t) {
					return true
				}
			}
		}
		return false
	}
	d := s.v[k]
	for x := int64(1); x <= m; x++ {
		for y := int64(1); y <= m; y++ {
			if !d.Admits(x, y) {
				continue
			}
			if fn(x, y) {
				return true
			}
		}
	}
	return false
}

// term computes problem d's loop-k contribution at (x, y); ok=false
// when the arithmetic saturated.
func (s *searcher) term(d, k int, x, y int64) (int64, bool) {
	var so deptest.SatOps
	p := s.probs[d]
	t := so.Sub(so.Mul(p.A[k], x), so.Mul(p.B[k], y))
	return t, !so.Overflowed
}

// estimate approximates the number of enumeration points (product of
// per-loop pair counts, saturating far above the budget).
func (s *searcher) estimate() int64 {
	total := int64(1)
	p0 := s.probs[0]
	for k := range s.clamp {
		m := s.clamp[k]
		var c int64
		switch {
		case !p0.Shared[k]:
			c = m
		case s.v[k] == deptest.DirEqual:
			c = m
		case s.v[k] == deptest.DirAny:
			c = m * m
		default: // < or >
			c = m * (m - 1) / 2
			if c < 1 {
				c = 1
			}
		}
		if total > (int64(shadowBudget)*4)/c {
			return int64(shadowBudget) * 4
		}
		total *= c
	}
	return total
}

// buildSuffix computes the pruning intervals by direct enumeration of
// each loop's admitted clamped domain.
func (s *searcher) buildSuffix() {
	n := s.probs[0].NumLoops()
	s.suffix = make([][]deptest.Interval, n+1)
	s.suffix[n] = make([]deptest.Interval, len(s.probs))
	for k := n - 1; k >= 0; k-- {
		ivs := make([]deptest.Interval, len(s.probs))
		for d := range s.probs {
			first := true
			var iv deptest.Interval
			whole := false
			s.pairs(k, func(x, y int64) bool {
				t, ok := s.term(d, k, x, y)
				if !ok {
					whole = true
					return true // stop: interval degrades to the whole line
				}
				if first {
					iv = deptest.Interval{Lo: t, Hi: t}
					first = false
				} else {
					if t < iv.Lo {
						iv.Lo = t
					}
					if t > iv.Hi {
						iv.Hi = t
					}
				}
				return false
			})
			if whole || first {
				iv = deptest.WholeInterval
			}
			ivs[d] = iv.Add(s.suffix[k+1][d])
		}
		s.suffix[k] = ivs
	}
}

// solve recursively assigns loops k.. and reports whether a full
// simultaneous solution was found (positions left in s.x, s.y).
func (s *searcher) solve(k int) bool {
	if s.out {
		return false
	}
	n := s.probs[0].NumLoops()
	if k == n {
		for d := range s.probs {
			if s.target[d] != 0 {
				return false
			}
		}
		return true
	}
	return s.pairs(k, func(x, y int64) bool {
		if s.budget--; s.budget < 0 {
			s.out = true
			return true // abort enumeration; caller sees found=false via s.out
		}
		saved := make([]int64, len(s.target))
		copy(saved, s.target)
		for d := range s.probs {
			t, ok := s.term(d, k, x, y)
			if !ok {
				s.sat = true
				copy(s.target, saved)
				return false
			}
			var so deptest.SatOps
			need := so.Sub(s.target[d], t)
			if so.Overflowed {
				s.sat = true
				copy(s.target, saved)
				return false
			}
			if !s.suffix[k+1][d].Contains(need) {
				copy(s.target, saved)
				return false
			}
			s.target[d] = need
		}
		s.x[k], s.y[k] = x, y
		if s.solve(k + 1) {
			return !s.out
		}
		copy(s.target, saved)
		return false
	}) && !s.out
}

// CertifyIndependence checks the claim "no dependence satisfying v
// exists between this reference pair": a witness found in the shadow
// domain (and confirmed by re-evaluating the affine equations)
// falsifies it; otherwise the claim is certified, exhaustively when
// the search covered the whole domain.
func CertifyIndependence(layer, claim string, probs []deptest.Problem, v deptest.Vector) Certificate {
	w, found, exhaustive := SearchWitness(probs, v)
	if found {
		if CheckWitness(probs, v, w) {
			return Certificate{
				Layer: layer, Claim: claim, Status: Falsified,
				Witness: w.flatten(), Detail: "dependence witness found in shadow domain",
			}
		}
		return Certificate{
			Layer: layer, Claim: claim, Status: Skipped,
			Witness: w.flatten(), Detail: "internal: enumerated witness failed re-evaluation",
		}
	}
	return Certificate{Layer: layer, Claim: claim, Status: Certified, Exhaustive: exhaustive}
}

// CertifyDependence checks a Definite ("dependence certainly
// exists") claim by producing a concrete witness. Absence of one is a
// falsification only when the search was exhaustive; a clamped search
// that comes up empty is inconclusive (the definite point may lie
// outside the shadow domain).
func CertifyDependence(layer, claim string, probs []deptest.Problem, v deptest.Vector) Certificate {
	w, found, exhaustive := SearchWitness(probs, v)
	if found && CheckWitness(probs, v, w) {
		return Certificate{
			Layer: layer, Claim: claim, Status: Certified,
			Witness: w.flatten(), Exhaustive: exhaustive,
		}
	}
	if exhaustive {
		return Certificate{
			Layer: layer, Claim: claim, Status: Falsified,
			Detail: "no solution exists in the exhaustively covered domain",
		}
	}
	return Certificate{
		Layer: layer, Claim: claim, Status: Skipped,
		Detail: "no witness within shadow bounds",
	}
}
