package certify

import (
	"testing"

	"arraycomp/internal/deptest"
)

func vec(t *testing.T, s string) deptest.Vector {
	t.Helper()
	v, err := deptest.ParseVector(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSearchWitnessFindsSolution(t *testing.T) {
	// a!(i) vs a!(j): x = y everywhere.
	p := deptest.NewProblem(0, []int64{1}, 0, []int64{1}, []int64{10})
	w, found, exhaustive := SearchWitness([]deptest.Problem{p}, vec(t, "(*)"))
	if !found || !exhaustive {
		t.Fatalf("found=%v exhaustive=%v", found, exhaustive)
	}
	if !CheckWitness([]deptest.Problem{p}, vec(t, "(*)"), w) {
		t.Fatalf("witness %v failed re-evaluation", w)
	}
}

func TestSearchWitnessRefutesParity(t *testing.T) {
	// a!(2i) vs a!(2j+1): no collision, exhaustively provable at small
	// bounds.
	p := deptest.NewProblem(0, []int64{2}, 1, []int64{2}, []int64{10})
	_, found, exhaustive := SearchWitness([]deptest.Problem{p}, vec(t, "(*)"))
	if found {
		t.Fatal("found a witness for an even/odd collision")
	}
	if !exhaustive {
		t.Fatal("10 iterations must be covered exhaustively")
	}
	c := CertifyIndependence("analysis", "parity", []deptest.Problem{p}, vec(t, "(*)"))
	if c.Status != Certified || !c.Exhaustive {
		t.Fatalf("certificate: %s", c)
	}
}

func TestSearchWitnessDirectionConstraint(t *testing.T) {
	// x = y has solutions, but none with x < y.
	p := deptest.NewProblem(0, []int64{1}, 0, []int64{1}, []int64{10})
	_, found, exhaustive := SearchWitness([]deptest.Problem{p}, vec(t, "(<)"))
	if found || !exhaustive {
		t.Fatalf("found=%v exhaustive=%v", found, exhaustive)
	}
}

func TestShadowClampEngages(t *testing.T) {
	// Bounds beyond the clamp: a near-diagonal dependence is still
	// found (witness lies inside the shadow), but exhaustiveness is
	// forfeited.
	p := deptest.NewProblem(0, []int64{1}, 1, []int64{1}, []int64{100000})
	w, found, exhaustive := SearchWitness([]deptest.Problem{p}, vec(t, "(*)"))
	if !found {
		t.Fatal("x = y + 1 has witnesses within the clamp")
	}
	if exhaustive {
		t.Fatal("clamped search must not claim exhaustiveness")
	}
	if !CheckWitness([]deptest.Problem{p}, vec(t, "(*)"), w) {
		t.Fatalf("witness %v failed re-evaluation", w)
	}

	// A dependence whose nearest solution lies beyond the clamp:
	// x = y + 100 with ShadowClamp = 64 → x ≤ 64 forces y ≤ −36.
	far := deptest.NewProblem(100, []int64{1}, 0, []int64{1}, []int64{100000})
	_, found, exhaustive = SearchWitness([]deptest.Problem{far}, vec(t, "(*)"))
	if found || exhaustive {
		t.Fatalf("found=%v exhaustive=%v; witness lies outside the shadow", found, exhaustive)
	}
	if c := CertifyDependence("analysis", "far", []deptest.Problem{far}, vec(t, "(*)")); c.Status != Skipped {
		t.Fatalf("unfindable definite witness must be Skipped, got %s", c)
	}
	if c := CertifyIndependence("analysis", "far", []deptest.Problem{far}, vec(t, "(*)")); c.Status != Certified || c.Exhaustive {
		t.Fatalf("clamped independence must certify non-exhaustively, got %s", c)
	}
}

func TestSimultaneousDimensions(t *testing.T) {
	// Dim 1: x = y. Dim 2: x = y + 1. Each dimension alone admits
	// solutions; simultaneously they are contradictory — exactly the
	// coupled-subscript case per-dimension tests cannot refute.
	d1 := deptest.NewProblem(0, []int64{1}, 0, []int64{1}, []int64{8})
	d2 := deptest.NewProblem(1, []int64{1}, 0, []int64{1}, []int64{8})
	_, found, exhaustive := SearchWitness([]deptest.Problem{d1, d2}, vec(t, "(*)"))
	if found || !exhaustive {
		t.Fatalf("found=%v exhaustive=%v", found, exhaustive)
	}
	c := CertifyIndependence("analysis", "coupled", []deptest.Problem{d1, d2}, vec(t, "(*)"))
	if c.Status != Certified || !c.Exhaustive {
		t.Fatalf("certificate: %s", c)
	}
}

func TestEmptyDomainExhaustive(t *testing.T) {
	p := deptest.NewProblem(0, []int64{1}, 0, []int64{1}, []int64{0})
	_, found, exhaustive := SearchWitness([]deptest.Problem{p}, vec(t, "(*)"))
	if found || !exhaustive {
		t.Fatalf("empty domain: found=%v exhaustive=%v", found, exhaustive)
	}
}

func TestCertifyDependenceWitness(t *testing.T) {
	// a!(2i) vs a!(2j): definite dependence, witness x = y.
	p := deptest.NewProblem(0, []int64{2}, 0, []int64{2}, []int64{16})
	c := CertifyDependence("analysis", "even", []deptest.Problem{p}, vec(t, "(*)"))
	if c.Status != Certified || len(c.Witness) != 2 {
		t.Fatalf("certificate: %s", c)
	}
	// A claim of a dependence that cannot exist is falsified when the
	// domain is covered.
	no := deptest.NewProblem(0, []int64{2}, 1, []int64{2}, []int64{16})
	c = CertifyDependence("analysis", "parity", []deptest.Problem{no}, vec(t, "(*)"))
	if c.Status != Falsified {
		t.Fatalf("certificate: %s", c)
	}
}

func TestCheckWitnessRejects(t *testing.T) {
	p := deptest.NewProblem(0, []int64{1}, 0, []int64{1}, []int64{10})
	probs := []deptest.Problem{p}
	if CheckWitness(probs, vec(t, "(*)"), Witness{X: []int64{3}, Y: []int64{4}}) {
		t.Error("3 ≠ 4 must fail the equation")
	}
	if CheckWitness(probs, vec(t, "(*)"), Witness{X: []int64{11}, Y: []int64{11}}) {
		t.Error("out-of-bounds positions must be rejected")
	}
	if CheckWitness(probs, vec(t, "(<)"), Witness{X: []int64{3}, Y: []int64{3}}) {
		t.Error("direction-violating witness must be rejected")
	}
	if !CheckWitness(probs, vec(t, "(=)"), Witness{X: []int64{3}, Y: []int64{3}}) {
		t.Error("valid witness rejected")
	}
}

func TestUnsharedLoops(t *testing.T) {
	// Source-only loop k: A = [1], B = [0], unshared; sink fixed. The
	// pair collides iff x = delta for some x in range.
	p := deptest.Problem{
		A0: 0, B0: 5,
		A: []int64{1}, B: []int64{0},
		Bound:  []int64{10},
		Shared: []bool{false},
	}
	w, found, exhaustive := SearchWitness([]deptest.Problem{p}, vec(t, "(*)"))
	if !found || !exhaustive {
		t.Fatalf("found=%v exhaustive=%v", found, exhaustive)
	}
	if w.X[0] != 5 {
		t.Fatalf("witness %v, want x=5", w)
	}
	out := deptest.Problem{
		A0: 0, B0: 50,
		A: []int64{1}, B: []int64{0},
		Bound:  []int64{10},
		Shared: []bool{false},
	}
	if _, found, exhaustive := SearchWitness([]deptest.Problem{out}, vec(t, "(*)")); found || !exhaustive {
		t.Fatalf("x = 50 unreachable in [1..10]: found=%v exhaustive=%v", found, exhaustive)
	}
}

func TestReportAggregation(t *testing.T) {
	r := NewReport()
	r.Record(Certificate{Layer: "analysis", Claim: "a", Status: Certified})
	r.Record(Certificate{Layer: "schedule", Claim: "b", Status: Skipped})
	r.Record(Certificate{Layer: "plan", Claim: "c", Status: Falsified})
	if r.CertifiedCount != 1 || r.SkippedCount != 1 || r.FalsifiedCount != 1 {
		t.Fatalf("counts: %s", r.Summary())
	}
	if err := r.Err(); err == nil {
		t.Fatal("falsified report must error")
	}
	other := NewReport()
	other.Record(Certificate{Layer: "analysis", Claim: "d", Status: Certified})
	r.Merge(other)
	if r.CertifiedCount != 2 {
		t.Fatalf("merge lost counts: %s", r.Summary())
	}
	clean := NewReport()
	clean.Record(Certificate{Status: Certified})
	if err := clean.Err(); err != nil {
		t.Fatalf("clean report must not error: %v", err)
	}
}
