// Package certify is the soundness-certification engine for the
// compiler's dependence verdicts. Every optimization the compiler
// performs — eliding collision/empties checks, thunkless schedules,
// in-place updates, parallel plans — rests on compile-time
// "independent" claims from the GCD/Banerjee/exact subscript tests. A
// single unsound claim silently produces wrong answers; the
// differential oracle can detect the divergence but not localize the
// lying pass.
//
// Certification closes that gap per claim:
//
//   - a "dependent" (Definite) claim is certified by a concrete
//     witness: a solution point of the dependence equations, checked
//     by re-evaluating the affine forms with saturating arithmetic;
//   - an "independent" claim is cross-validated by exhaustive
//     enumeration over a bounded shadow domain — the real iteration
//     domain with every loop clamped to at most ShadowClamp
//     iterations. The shadow domain is a subset of the real one, so
//     any solution found there soundly falsifies the claim; absence
//     of a solution certifies the claim outright when the clamp
//     covered the full domain, and up to the shadow bound otherwise.
//
// The analysis, schedule, and loop-IR layers each translate their
// claims into Certificates (see their respective certify files); the
// core driver aggregates them into a Report and fails the compile on
// any falsification, naming the layer that lied.
package certify

import (
	"fmt"
	"strings"

	"arraycomp/internal/deptest"
)

// ShadowClamp is the per-dimension iteration bound of the shadow
// domain: independence claims are cross-validated over at most this
// many iterations per loop.
const ShadowClamp = 64

// shadowBudget caps the total number of enumeration points per
// witness search. When the clamped domain still exceeds the budget,
// clamps are halved (largest first) until it fits, trading
// exhaustiveness for boundedness.
const shadowBudget = 1 << 20

// Status classifies a certificate.
type Status uint8

const (
	// Certified: the claim was validated (witness found, or shadow
	// search exhausted without a counterexample).
	Certified Status = iota
	// Falsified: a concrete counterexample disproves the claim — a
	// compiler bug, reported as a compile error.
	Falsified
	// Skipped: the claim could not be decided (domain exceeded the
	// shadow bound, arithmetic saturated, or non-affine references).
	Skipped
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Certified:
		return "certified"
	case Falsified:
		return "falsified"
	case Skipped:
		return "skipped"
	}
	return "Status(?)"
}

// Certificate records the outcome of checking one compiler claim.
type Certificate struct {
	// Layer names the pass whose claim was checked: "analysis",
	// "schedule", or "plan".
	Layer string
	// Claim is the human-readable statement that was checked.
	Claim string
	// Status is the outcome.
	Status Status
	// Witness holds the solution point (source positions followed by
	// sink positions) for witness-backed certificates and
	// counterexamples.
	Witness []int64
	// Detail carries extra context (why skipped, what the
	// counterexample violates).
	Detail string
	// Exhaustive reports whether the shadow search covered the entire
	// iteration domain (clamps never engaged, budget never hit).
	Exhaustive bool
}

// String renders the certificate on one line.
func (c Certificate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s: %s", c.Layer, c.Claim, c.Status)
	if len(c.Witness) > 0 {
		fmt.Fprintf(&b, " witness=%v", c.Witness)
	}
	if c.Detail != "" {
		fmt.Fprintf(&b, " (%s)", c.Detail)
	}
	if c.Status == Certified && !c.Exhaustive {
		fmt.Fprintf(&b, " [shadow-bounded]")
	}
	return b.String()
}

// Report aggregates certificates across a compilation. Certified
// outcomes are only counted (they would swamp the report); every
// falsification is kept, and a bounded sample of skips is retained
// for diagnostics.
type Report struct {
	CertifiedCount int
	FalsifiedCount int
	SkippedCount   int
	// Failures holds every falsified certificate.
	Failures []Certificate
	// Skips holds the first few skipped certificates.
	Skips []Certificate
}

// maxSkipSample bounds the retained skipped certificates.
const maxSkipSample = 16

// NewReport returns an empty report.
func NewReport() *Report { return &Report{} }

// Record files one certificate.
func (r *Report) Record(c Certificate) {
	switch c.Status {
	case Certified:
		r.CertifiedCount++
	case Falsified:
		r.FalsifiedCount++
		r.Failures = append(r.Failures, c)
	case Skipped:
		r.SkippedCount++
		if len(r.Skips) < maxSkipSample {
			r.Skips = append(r.Skips, c)
		}
	}
}

// Merge folds another report into r.
func (r *Report) Merge(o *Report) {
	if o == nil {
		return
	}
	r.CertifiedCount += o.CertifiedCount
	r.FalsifiedCount += o.FalsifiedCount
	r.SkippedCount += o.SkippedCount
	r.Failures = append(r.Failures, o.Failures...)
	for _, c := range o.Skips {
		if len(r.Skips) < maxSkipSample {
			r.Skips = append(r.Skips, c)
		}
	}
}

// Summary renders the counts on one line.
func (r *Report) Summary() string {
	return fmt.Sprintf("certified=%d falsified=%d skipped=%d",
		r.CertifiedCount, r.FalsifiedCount, r.SkippedCount)
}

// Err returns a compile-stopping error describing the falsified
// claims (nil when none). The first failure's layer leads the message
// so fuzzing localizes which pass lied.
func (r *Report) Err() error {
	if r.FalsifiedCount == 0 {
		return nil
	}
	first := r.Failures[0]
	return fmt.Errorf("certification falsified %d claim(s); first: %s", r.FalsifiedCount, first)
}

// String renders the full report for -certify output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "certify: %s\n", r.Summary())
	for _, c := range r.Failures {
		fmt.Fprintf(&b, "  FALSIFIED %s\n", c)
	}
	for _, c := range r.Skips {
		fmt.Fprintf(&b, "  skipped %s\n", c)
	}
	if r.SkippedCount > len(r.Skips) {
		fmt.Fprintf(&b, "  … and %d more skipped\n", r.SkippedCount-len(r.Skips))
	}
	return b.String()
}

// Witness is a simultaneous solution point of a dependence-problem
// battery: X are the source positions and Y the sink positions, both
// over the combined loop list of the problems.
type Witness struct {
	X, Y []int64
}

// flatten renders the witness as one slice (X then Y) for Certificate
// storage.
func (w Witness) flatten() []int64 {
	out := make([]int64, 0, len(w.X)+len(w.Y))
	out = append(out, w.X...)
	out = append(out, w.Y...)
	return out
}

// CheckWitness re-evaluates every problem's dependence equation
// Σ A[k]·x[k] − Σ B[k]·y[k] = B0 − A0 at the witness with saturating
// arithmetic and checks the direction vector admits the point on
// every shared loop. Only exact (non-saturating) evaluations count.
func CheckWitness(probs []deptest.Problem, v deptest.Vector, w Witness) bool {
	if len(probs) == 0 {
		return false
	}
	n := probs[0].NumLoops()
	if len(w.X) != n || len(w.Y) != n {
		return false
	}
	for k := 0; k < n; k++ {
		if w.X[k] < 1 || w.X[k] > probs[0].Bound[k] || w.Y[k] < 1 || w.Y[k] > probs[0].Bound[k] {
			return false
		}
		if probs[0].Shared[k] && k < len(v) && !v[k].Admits(w.X[k], w.Y[k]) {
			return false
		}
	}
	for _, p := range probs {
		if p.NumLoops() != n {
			return false
		}
		var s deptest.SatOps
		h := int64(0)
		for k := 0; k < n; k++ {
			h = s.Add(h, s.Sub(s.Mul(p.A[k], w.X[k]), s.Mul(p.B[k], w.Y[k])))
		}
		delta, exact := p.DeltaSat()
		if s.Overflowed || !exact || h != delta {
			return false
		}
	}
	return true
}
