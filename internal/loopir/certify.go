package loopir

import (
	"fmt"

	"arraycomp/internal/certify"
	"arraycomp/internal/deptest"
)

// Certification of parallel plans. The planner derived each schedule
// from closed-form distance vectors; the certifier re-derives the
// ground truth by brute force — enumerating the (clamped) iteration
// space, bucketing raw array accesses by the element they touch, and
// checking that every conflicting pair (at least one write, distinct
// iterations) is legal under the attached schedule's execution order:
//
//   - shard: no cross-iteration conflicts at all (chunk boundaries are
//     chosen at run time, so any conflict can straddle one);
//   - chains: conflicting iterations agree modulo the chain count;
//   - tile: conflicting points share a tile (tiles run concurrently
//     and unordered; within a tile execution is sequential);
//   - wavefront: conflicting points share a tile, or the earlier point
//     lies on a strictly earlier tile anti-diagonal (the barrier
//     orders diagonals). Per-row prefix statements execute with the
//     row's column-0 tile.

// planOccBudget caps enumerated accesses per scheduled loop, and
// planBucketCap the retained occurrences per element bucket.
const (
	planOccBudget = 1 << 18
	planBucketCap = 64
)

// CertifyPlans audits every parallel schedule the optimizer attached
// to p and returns the aggregated report.
func CertifyPlans(p *Program) *certify.Report {
	rep := certify.NewReport()
	o := &optimizer{prog: p}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *Loop:
				if x.Par != nil {
					rep.Record(certifyPlan(o, x))
				}
				walk(x.Body)
			case *If:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	walk(p.Stmts)
	return rep
}

// planOcc is one enumerated access occurrence.
type planOcc struct {
	i, j   int64 // loop variable values (j unused for 1-D)
	prefix bool
	write  bool
	elem   string
}

// certifyPlan checks one scheduled loop.
func certifyPlan(o *optimizer, l *Loop) certify.Certificate {
	claim := fmt.Sprintf("loop %s: %s schedule legal", l.Var, l.Par)
	skip := func(detail string) certify.Certificate {
		return certify.Certificate{Layer: "plan", Claim: claim, Status: certify.Skipped, Detail: detail}
	}
	switch l.Par.Kind {
	case ParShard, ParChains:
		acc, ok := o.collectParAccesses(l.Body)
		if !ok {
			return skip("accesses not collectible")
		}
		return checkPlan(claim, acc, 0, l, nil, l.Par)
	case ParTile, ParWavefront:
		inner := nest2D(l)
		if inner == nil {
			return skip("nest shape not recognized")
		}
		pre, okPre := o.collectParAccesses(l.Body[:len(l.Body)-1])
		body, okBody := o.collectParAccesses(inner.Body)
		if !okPre || !okBody {
			return skip("accesses not collectible")
		}
		return checkPlan(claim, append(pre, body...), len(pre), l, inner, l.Par)
	case ParMonoShard:
		// Legality is claim-conditional (monotone index array), not a
		// distance-vector fact; CertifyClaims audits the claim cover and
		// the runtime verifier discharges the claims themselves.
		return skip("mono-shard legality audited by the claims certifier")
	}
	return skip("unknown schedule kind")
}

// checkPlan enumerates the clamped iteration space and validates every
// conflict against the schedule. The first nPre accesses are per-row
// prefix accesses (2-D only; inner == nil means 1-D).
func checkPlan(claim string, acc []parAccess, nPre int, outer, inner *Loop, par *ParSchedule) certify.Certificate {
	if (par.Kind == ParTile || par.Kind == ParWavefront) && (par.TileI < 1 || par.TileJ < 1) {
		return certify.Certificate{
			Layer: "plan", Claim: claim, Status: certify.Falsified,
			Detail: fmt.Sprintf("degenerate tile extents %dx%d", par.TileI, par.TileJ),
		}
	}
	if par.Kind == ParChains && par.Chains < 2 {
		return certify.Certificate{
			Layer: "plan", Claim: claim, Status: certify.Falsified,
			Detail: fmt.Sprintf("degenerate chain count %d", par.Chains),
		}
	}
	for k := 0; k < nPre; k++ {
		acc[k].prefix = true
	}
	// Accesses to one array must agree on every variable other than the
	// scheduled loop variables; those enclosing contributions then
	// cancel out of element equality, and evaluating them as zero is
	// exact. Disagreement would make conflicts depend on the enclosing
	// iteration, which this pointwise check cannot cover.
	scheduled := map[string]bool{outer.Var: true}
	if inner != nil {
		scheduled[inner.Var] = true
	}
	ref := map[string]*parAccess{}
	for k := range acc {
		a := &acc[k]
		r, ok := ref[a.arr]
		if !ok {
			ref[a.arr] = a
			continue
		}
		for d := range a.subs {
			if d >= len(r.subs) {
				break
			}
			fa, fr := a.subs[d], r.subs[d]
			for v, cv := range fa.t {
				if !scheduled[v] && fr.t[v] != cv {
					return certify.Certificate{
						Layer: "plan", Claim: claim, Status: certify.Skipped,
						Detail: fmt.Sprintf("enclosing-variable coefficients differ on %s", a.arr),
					}
				}
			}
			for v, cv := range fr.t {
				if !scheduled[v] && fa.t[v] != cv {
					return certify.Certificate{
						Layer: "plan", Claim: claim, Status: certify.Skipped,
						Detail: fmt.Sprintf("enclosing-variable coefficients differ on %s", a.arr),
					}
				}
			}
		}
	}

	ni := tripCount(outer.From, outer.To, outer.Step)
	exhaustive := true
	if ni > certify.ShadowClamp {
		ni = certify.ShadowClamp
		exhaustive = false
	}
	var nj int64 = 1
	if inner != nil {
		nj = tripCount(inner.From, inner.To, inner.Step)
		if nj > certify.ShadowClamp {
			nj = certify.ShadowClamp
			exhaustive = false
		}
	}

	eval := func(a *parAccess, vi, vj int64) (string, bool) {
		key := a.arr
		for _, f := range a.subs {
			var s deptest.SatOps
			v := f.c
			for name, coeff := range f.t {
				switch {
				case name == outer.Var:
					v = s.Add(v, s.Mul(coeff, vi))
				case inner != nil && name == inner.Var:
					v = s.Add(v, s.Mul(coeff, vj))
				}
				// Enclosing variables cancel (verified above): skip.
			}
			if s.Overflowed {
				return "", false
			}
			key += fmt.Sprintf(",%d", v)
		}
		return key, true
	}

	// Bucket occurrences by element.
	buckets := map[string][]planOcc{}
	capped := false
	sat := false
	occCount := 0
	addOcc := func(a *parAccess, vi, vj int64) bool {
		elem, ok := eval(a, vi, vj)
		if !ok {
			sat = true
			return true
		}
		b := buckets[elem]
		if len(b) >= planBucketCap {
			capped = true
			return true
		}
		buckets[elem] = append(b, planOcc{i: vi, j: vj, prefix: a.prefix, write: a.write, elem: elem})
		occCount++
		return occCount <= planOccBudget
	}
enumLoop:
	for ki := int64(0); ki < ni; ki++ {
		vi := outer.From + ki*outer.Step
		for k := range acc {
			if !acc[k].prefix {
				continue
			}
			if !addOcc(&acc[k], vi, 0) {
				break enumLoop
			}
		}
		if inner == nil {
			for k := range acc {
				if acc[k].prefix {
					continue
				}
				if !addOcc(&acc[k], vi, 0) {
					break enumLoop
				}
			}
			continue
		}
		for kj := int64(0); kj < nj; kj++ {
			vj := inner.From + kj*inner.Step
			for k := range acc {
				if acc[k].prefix {
					continue
				}
				if !addOcc(&acc[k], vi, vj) {
					break enumLoop
				}
			}
		}
	}
	if occCount > planOccBudget {
		exhaustive = false
	}
	if capped || sat {
		exhaustive = false
	}

	// Tile coordinates (2-D kinds). Prefix occurrences sit in the
	// row's column-0 tile.
	tileOf := func(p planOcc) (int64, int64) {
		ti := (p.i - outer.From) / par.TileI
		if p.prefix {
			return ti, 0
		}
		return ti, (p.j - inner.From) / par.TileJ
	}
	// before reports sequential execution order of two distinct points.
	before := func(a, b planOcc) bool {
		if a.i != b.i {
			return a.i < b.i
		}
		if a.prefix != b.prefix {
			return a.prefix
		}
		return a.j < b.j
	}
	legal := func(a, b planOcc) bool {
		// Order the pair by sequential execution.
		if before(b, a) {
			a, b = b, a
		}
		switch par.Kind {
		case ParShard:
			return false
		case ParChains:
			return (a.i-b.i)%par.Chains == 0
		case ParTile:
			ai, aj := tileOf(a)
			bi, bj := tileOf(b)
			return ai == bi && aj == bj
		case ParWavefront:
			ai, aj := tileOf(a)
			bi, bj := tileOf(b)
			if ai == bi && aj == bj {
				return true
			}
			return ai+aj < bi+bj
		}
		return false
	}
	samePoint := func(a, b planOcc) bool {
		return a.i == b.i && a.j == b.j && a.prefix == b.prefix
	}
	for _, b := range buckets {
		for x := 0; x < len(b); x++ {
			for y := x + 1; y < len(b); y++ {
				p, q := b[x], b[y]
				if !p.write && !q.write {
					continue
				}
				if samePoint(p, q) {
					continue // one iteration executes sequentially
				}
				if !legal(p, q) {
					return certify.Certificate{
						Layer: "plan", Claim: claim, Status: certify.Falsified,
						Witness: []int64{p.i, p.j, q.i, q.j},
						Detail:  fmt.Sprintf("conflicting accesses of %s run unordered", p.elem),
					}
				}
			}
		}
	}
	return certify.Certificate{
		Layer: "plan", Claim: claim, Status: certify.Certified, Exhaustive: exhaustive,
	}
}
