package loopir

import (
	"strings"
	"testing"

	"arraycomp/internal/runtime"
)

func TestCertifyPlansTile(t *testing.T) {
	n := int64(128)
	p := &Program{
		Name: "jac",
		Arrays: []ArrayDecl{
			{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleOut},
			{Name: "b", B: runtime.NewBounds2(1, 1, n, n), Role: RoleIn},
		},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 2, To: n - 1, Step: 1, Parallel: true, Body: []Stmt{
				&Loop{Var: "j", From: 2, To: n - 1, Step: 1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
						Rhs:   &ARef{Array: "b", Subs: []IntExpr{lin(-1, term("i", 1)), lin(0, term("j", 1))}},
					},
				}},
			}},
		},
	}
	Optimize(p)
	if d := p.Dump(); !strings.Contains(d, "[tile") {
		t.Fatalf("planner did not tile:\n%s", d)
	}
	rep := CertifyPlans(p)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("legal tile schedule falsified:\n%s", rep)
	}
	if rep.CertifiedCount == 0 {
		t.Fatalf("tile schedule not certified: %s", rep.Summary())
	}
}

func TestCertifyPlansWavefront(t *testing.T) {
	n := int64(128)
	p := &Program{
		Name:   "sor",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleInOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 2, To: n - 1, Step: 1, Doacross: true, Body: []Stmt{
				&Loop{Var: "j", From: 2, To: n - 1, Step: 1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
						Rhs: &VBin{Op: '+',
							L: &ARef{Array: "a", Subs: []IntExpr{lin(-1, term("i", 1)), lin(0, term("j", 1))}},
							R: &ARef{Array: "a", Subs: []IntExpr{lin(0, term("i", 1)), lin(-1, term("j", 1))}},
						},
					},
				}},
			}},
		},
	}
	Optimize(p)
	if d := p.Dump(); !strings.Contains(d, "[wavefront") {
		t.Fatalf("planner did not pick a wavefront:\n%s", d)
	}
	rep := CertifyPlans(p)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("legal wavefront falsified:\n%s", rep)
	}
}

func TestCertifyPlansChains(t *testing.T) {
	n := int64(8192)
	p := &Program{
		Name:   "rec3",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleInOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 4, To: n, Step: 1, Doacross: true, Body: []Stmt{
				&Assign{
					Array: "a",
					Subs:  []IntExpr{lin(0, term("i", 1))},
					Rhs: &VBin{Op: '+',
						L: &ARef{Array: "a", Subs: []IntExpr{lin(-3, term("i", 1))}},
						R: &VConst{Value: 1},
					},
				},
			}},
		},
	}
	Optimize(p)
	outer, ok := p.Stmts[0].(*Loop)
	if !ok || outer.Par == nil || outer.Par.Kind != ParChains {
		t.Fatalf("want chains schedule, got:\n%s", p.Dump())
	}
	rep := CertifyPlans(p)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("legal chains schedule falsified:\n%s", rep)
	}
}

func TestCertifyPlansCatchesForgedShard(t *testing.T) {
	// A unit-distance recurrence sharded anyway: iterations i and i+1
	// conflict across any chunk boundary; the certifier must produce a
	// concrete witness pair.
	n := int64(4096)
	p := &Program{
		Name:   "rec1",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleInOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 2, To: n, Step: 1, Parallel: true,
				Par: &ParSchedule{Kind: ParShard},
				Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1))},
						Rhs:   &ARef{Array: "a", Subs: []IntExpr{lin(-1, term("i", 1))}},
					},
				}},
		},
	}
	rep := CertifyPlans(p)
	if rep.FalsifiedCount == 0 {
		t.Fatalf("illegal shard survived certification:\n%s", rep)
	}
	if len(rep.Failures[0].Witness) == 0 {
		t.Fatalf("falsification carries no witness: %s", rep.Failures[0])
	}
}

func TestCertifyPlansCatchesForgedChains(t *testing.T) {
	// Distance-3 recurrence forced onto 2 chains: iterations 4 and 7
	// land on different residues mod 2 yet conflict.
	n := int64(4096)
	p := &Program{
		Name:   "rec3bad",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleInOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 4, To: n, Step: 1, Doacross: true,
				Par: &ParSchedule{Kind: ParChains, Chains: 2},
				Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1))},
						Rhs:   &ARef{Array: "a", Subs: []IntExpr{lin(-3, term("i", 1))}},
					},
				}},
		},
	}
	rep := CertifyPlans(p)
	if rep.FalsifiedCount == 0 {
		t.Fatalf("illegal chain count survived certification:\n%s", rep)
	}
}

func TestCertifyPlansCatchesZeroTile(t *testing.T) {
	n := int64(128)
	p := &Program{
		Name:   "zt",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: n, Step: 1, Parallel: true,
				Par: &ParSchedule{Kind: ParWavefront, TileI: 0, TileJ: 16},
				Body: []Stmt{
					&Loop{Var: "j", From: 1, To: n, Step: 1, Body: []Stmt{
						&Assign{Array: "a",
							Subs: []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
							Rhs:  &VConst{Value: 1}},
					}},
				}},
		},
	}
	rep := CertifyPlans(p)
	if rep.FalsifiedCount == 0 {
		t.Fatalf("zero-diagonal tile survived certification:\n%s", rep)
	}
}

// TestSaturatedTripStaysSequential is the cost-model regression for
// huge spans: [−2^62 .. 2^62] used to wrap negative in tripCount; the
// saturating count must keep the nest sequential (no schedule, no
// degenerate tile) — asserted against a schedule dump golden.
func TestSaturatedTripStaysSequential(t *testing.T) {
	lo := -(int64(1) << 62)
	hi := int64(1) << 62
	p := &Program{
		Name:   "huge",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds2(1, 1, 8, 8), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: lo, To: hi, Step: 1, Parallel: true, Body: []Stmt{
				&Loop{Var: "j", From: lo, To: hi, Step: 1, Body: []Stmt{
					&Assign{Array: "a",
						Subs: []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
						Rhs:  &VConst{Value: 1}},
				}},
			}},
		},
	}
	if trip := tripCount(lo, hi, 1); trip != tripSaturated {
		t.Fatalf("tripCount(−2^62, 2^62, 1) = %d, want saturation at %d", trip, tripSaturated)
	}
	Optimize(p)
	golden := "program huge\n" +
		"  array a ((1,1),(8,8)) out\n" +
		"  do i = -4611686018427387904, 4611686018427387904, 1  -- forward, parallel\n" +
		"    do j = -4611686018427387904, 4611686018427387904, 1  -- forward\n" +
		"      ind o$1 = -4611686018427387913+8*i step 1\n" +
		"      a[i,j]@{o$1} := 1\n"
	if d := p.Dump(); d != golden {
		t.Fatalf("schedule dump changed:\n--- got ---\n%s--- want ---\n%s", d, golden)
	}
	if rep := CertifyPlans(p); rep.FalsifiedCount != 0 {
		t.Fatalf("sequential nest falsified:\n%s", rep)
	}
}

func TestTripCountSaturation(t *testing.T) {
	cases := []struct {
		from, to, step int64
		want           int64
	}{
		{1, 10, 1, 10},
		{10, 1, -1, 10},
		{1, 10, 3, 4},
		{10, 1, 1, 0},
		{1, 10, 0, 0},
		{-(int64(1) << 62), int64(1) << 62, 1, tripSaturated},
		{int64(1) << 62, -(int64(1) << 62), -1, tripSaturated},
		{-(int64(1) << 62), int64(1) << 62, 1 << 40, (int64(1) << 23) + 1},
	}
	for _, c := range cases {
		if got := tripCount(c.from, c.to, c.step); got != c.want {
			t.Errorf("tripCount(%d,%d,%d) = %d, want %d", c.from, c.to, c.step, got, c.want)
		}
		if got := tripCount(c.from, c.to, c.step); got < 0 {
			t.Errorf("tripCount(%d,%d,%d) negative: %d", c.from, c.to, c.step, got)
		}
	}
}
