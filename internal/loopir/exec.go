package loopir

import (
	"fmt"
	goruntime "runtime"

	"arraycomp/internal/runtime"
)

// SetWorkers fixes the parallel worker budget for subsequent runs of
// this executable. n <= 0 restores the default: GOMAXPROCS at the time
// each run starts. n == 1 forces sequential execution.
func (ex *Exec) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	ex.workers = n
}

// Run executes the compiled program. inputs supplies every RoleIn and
// RoleInOut array (bounds must match the declarations); RoleOut and
// RoleTemp arrays are allocated fresh. The result maps the names of
// RoleOut and RoleInOut arrays to their final contents. RoleInOut
// arrays are mutated in place — callers wanting persistence must clone
// first (that is the whole point of the paper's section 9: the
// analysis has proven the old version dead).
func (ex *Exec) Run(inputs map[string]*runtime.Strict) (map[string]*runtime.Strict, error) {
	f := &frame{
		ints:    make([]int64, len(ex.intSlots)),
		floats:  make([]float64, len(ex.floatSlots)),
		arrays:  make([]*runtime.Strict, len(ex.prog.Arrays)),
		defs:    make([][]bool, len(ex.prog.Arrays)),
		workers: ex.workers,
	}
	if f.workers <= 0 {
		f.workers = goruntime.GOMAXPROCS(0)
	}
	for i, d := range ex.prog.Arrays {
		switch d.Role {
		case RoleIn, RoleInOut:
			in, ok := inputs[d.Name]
			if !ok {
				return nil, &ExecError{Program: ex.prog.Name, Msg: fmt.Sprintf("missing input array %q", d.Name)}
			}
			if !in.B.Equal(d.B) {
				return nil, &ExecError{Program: ex.prog.Name, Msg: fmt.Sprintf("input array %q has bounds %s, declared %s", d.Name, in.B, d.B)}
			}
			f.arrays[i] = in
		case RoleOut, RoleTemp:
			f.arrays[i] = runtime.NewStrict(d.B)
		}
		if d.TrackDefs {
			f.defs[i] = make([]bool, d.B.Size())
		}
	}
	if err := ex.exec(f); err != nil {
		return nil, err
	}
	out := map[string]*runtime.Strict{}
	for i, d := range ex.prog.Arrays {
		if d.Role == RoleOut || d.Role == RoleInOut {
			out[d.Name] = f.arrays[i]
		}
	}
	return out, nil
}

// RunResult is a convenience wrapper returning the single result array
// of a program with exactly one RoleOut/RoleInOut declaration.
func (ex *Exec) RunResult(inputs map[string]*runtime.Strict) (*runtime.Strict, error) {
	outs, err := ex.Run(inputs)
	if err != nil {
		return nil, err
	}
	if len(outs) != 1 {
		return nil, &ExecError{Program: ex.prog.Name, Msg: fmt.Sprintf("program has %d result arrays, want 1", len(outs))}
	}
	for _, a := range outs {
		return a, nil
	}
	panic("unreachable")
}

func (ex *Exec) exec(f *frame) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(*ExecError); ok {
				err = ee
				return
			}
			panic(r)
		}
	}()
	runAll(ex.run, f)
	return nil
}

// Program returns the source IR of the compiled executable.
func (ex *Exec) Program() *Program { return ex.prog }
