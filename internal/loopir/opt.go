package loopir

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The loop-IR optimizer: rewrites a lowered Program in place, between
// codegen lowering and compilation/emission. Four passes, applied
// bottom-up per nesting level:
//
//  1. dead-loop elimination — zero-trip and empty loops are deleted;
//  2. loop fusion — adjacent loops with identical headers merge into
//     one pass when a conservative per-dimension dependence test over
//     the (fully concrete) iteration spaces proves the interleaved
//     order preserves every cross-body dependence;
//  3. invariant hoisting — whole-loop unswitching of invariant guards
//     (including splitting invariant conjuncts off a BAnd), hoisting of
//     invariant scalar bindings, and extraction of maximal invariant
//     float subexpressions into fresh scalars computed once before the
//     loop;
//  4. strength reduction — every unchecked affine access has its
//     row-major offset polynomial flattened to Const + Σ Coeff·var and
//     replaced by an induction register (Loop.Inds) initialized at
//     loop entry (the precomputed "row base" for inner loops of 2-D
//     nests) and advanced by a constant stride per iteration; accesses
//     whose offsets differ only by a constant share one register.
//
// Everything here is licensed by properties the earlier phases already
// established: loop bounds, strides and subscript coefficients are
// concrete integers (compilation is per parameter binding), so legality
// reduces to integer interval/divisibility arithmetic — no symbolic
// dependence machinery is needed at this level. The optimizer never
// touches bounds-checked accesses (those keep the subscript path so
// error messages still report source-level subscripts).

// OptStats reports what the optimizer did, for plan notes and tests.
type OptStats struct {
	DeadLoops       int // zero-trip or emptied loops removed
	FusedLoops      int // adjacent loop pairs merged
	Unswitched      int // loops whose invariant guard moved outside
	HoistedScalars  int // invariant scalar bindings moved before a loop
	HoistedExprs    int // invariant subexpressions extracted to scalars
	ReducedAccesses int // accesses rewritten to offset form
	IndRegisters    int // induction registers introduced
	ParSchedules    int // loops given parallel schedules
	StencilNests    int // nests annotated with a stencil footprint
	StencilSplits   int // guard splits performed (interior + strips)
	StencilGuards   int // guards resolved to a constant arm
}

// Changed reports whether any rewrite fired.
func (s *OptStats) Changed() bool {
	return s.DeadLoops+s.FusedLoops+s.Unswitched+s.HoistedScalars+
		s.HoistedExprs+s.ReducedAccesses+s.IndRegisters+s.ParSchedules+
		s.StencilNests+s.StencilSplits+s.StencilGuards > 0
}

// String summarizes the non-zero counters.
func (s *OptStats) String() string {
	var parts []string
	add := func(n int, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, what))
		}
	}
	add(s.DeadLoops, "dead loops removed")
	add(s.FusedLoops, "loops fused")
	add(s.Unswitched, "loops unswitched")
	add(s.HoistedScalars, "scalar bindings hoisted")
	add(s.HoistedExprs, "invariant exprs hoisted")
	add(s.ReducedAccesses, "accesses strength-reduced")
	add(s.IndRegisters, "induction registers")
	add(s.ParSchedules, "parallel schedules")
	add(s.StencilSplits, "stencil splits")
	add(s.StencilGuards, "guards resolved")
	add(s.StencilNests, "stencil nests")
	if len(parts) == 0 {
		return "no rewrites applied"
	}
	return strings.Join(parts, ", ")
}

// OptOptions selects optional passes. The zero value runs everything.
type OptOptions struct {
	// NoStencil disables stencil guard splitting and footprint
	// annotation (the `stencil` oracle ablation arm); the generic
	// rewrite passes and parallel planning still run.
	NoStencil bool
}

// Optimize rewrites the program in place and reports what it did.
func Optimize(p *Program) *OptStats {
	return OptimizeWith(p, OptOptions{})
}

// OptimizeWith is Optimize with pass selection.
func OptimizeWith(p *Program, opts OptOptions) *OptStats {
	o := &optimizer{prog: p, stats: &OptStats{}, names: map[string]bool{}}
	for _, s := range p.Scalars {
		o.names[s] = true
	}
	p.Stmts = o.optStmts(p.Stmts, map[string]loopRange{})
	if !opts.NoStencil {
		// Guard splitting before annotation so interior clones are
		// recognized; both before planning so the interior can gain a
		// schedule the guarded original couldn't, and so halo-fed tile
		// sizes can be derived from the annotation.
		p.Stmts = o.splitStencilGuards(p.Stmts, false)
		o.annotateStencils(p.Stmts)
	}
	o.planParallel(p.Stmts)
	return o.stats
}

type optimizer struct {
	prog     *Program
	stats    *OptStats
	names    map[string]bool // taken scalar/register names
	indSeq   int
	hSeq     int
	splitSeq int
}

// loopRange is a concrete iteration range: the loop variable visits
// from, from+step, … and stays within [min(from,last), max(from,last)].
type loopRange struct{ from, to, step int64 }

func (r loopRange) trip() int64 { return tripCount(r.from, r.to, r.step) }

// valueBounds returns the smallest/largest value the variable takes.
func (r loopRange) valueBounds() (lo, hi int64) {
	last := r.from + (r.trip()-1)*r.step
	if r.step > 0 {
		return r.from, last
	}
	return last, r.from
}

func copyEnv(env map[string]loopRange) map[string]loopRange {
	out := make(map[string]loopRange, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// optStmts optimizes one nesting level: children first (so inner loops
// are fully optimized before their parents are examined), then hoisting
// and unswitching per loop, then fusion of adjacent loops, and finally
// strength reduction of each loop's direct body.
func (o *optimizer) optStmts(list []Stmt, env map[string]loopRange) []Stmt {
	var out []Stmt
	for _, s := range list {
		switch x := s.(type) {
		case *Loop:
			if tripCount(x.From, x.To, x.Step) == 0 {
				o.stats.DeadLoops++
				continue
			}
			inner := copyEnv(env)
			inner[x.Var] = loopRange{x.From, x.To, x.Step}
			x.Body = o.optStmts(x.Body, inner)
			if len(x.Body) == 0 {
				o.stats.DeadLoops++
				continue
			}
			pre, repl := o.hoistFromLoop(x, env)
			out = append(out, pre...)
			out = append(out, repl...)
		case *If:
			x.Then = o.optStmts(x.Then, env)
			x.Else = o.optStmts(x.Else, env)
			out = append(out, x)
		default:
			out = append(out, s)
		}
	}
	out = o.fuseAdjacent(out, env)
	for _, s := range out {
		o.reduceIn(s, env)
	}
	return out
}

// reduceIn strength-reduces loops at this level, including loops that
// unswitching just wrapped in an If. It does not descend into loop
// bodies — nested loops were reduced while their own level was
// processed (Off-bearing accesses are skipped anyway, so a second visit
// is a no-op).
func (o *optimizer) reduceIn(s Stmt, env map[string]loopRange) {
	switch x := s.(type) {
	case *Loop:
		o.strengthReduce(x, env)
	case *If:
		for _, t := range x.Then {
			o.reduceIn(t, env)
		}
		for _, t := range x.Else {
			o.reduceIn(t, env)
		}
	}
}

// fresh returns an unused name with the given prefix and registers it.
func (o *optimizer) fresh(prefix string, seq *int) string {
	for {
		*seq++
		name := fmt.Sprintf("%s$%d", prefix, *seq)
		if !o.names[name] {
			o.names[name] = true
			return name
		}
	}
}

// ---------------------------------------------------------------------------
// Linear forms and expression walks
// ---------------------------------------------------------------------------

// linForm is an affine integer form: c + Σ t[var]·var.
type linForm struct {
	c int64
	t map[string]int64
}

func (f *linForm) clone() *linForm {
	out := &linForm{c: f.c, t: make(map[string]int64, len(f.t))}
	for k, v := range f.t {
		out.t[k] = v
	}
	return out
}

func (f *linForm) addTerm(name string, coeff int64) {
	if coeff == 0 {
		return
	}
	f.t[name] += coeff
	if f.t[name] == 0 {
		delete(f.t, name)
	}
}

// scale multiplies the form by a constant.
func (f *linForm) scale(k int64) {
	f.c *= k
	for name := range f.t {
		f.t[name] *= k
		if f.t[name] == 0 {
			delete(f.t, name)
		}
	}
}

// vars returns the form's variables in sorted order.
func (f *linForm) vars() []string {
	out := make([]string, 0, len(f.t))
	for name := range f.t {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// intLin converts an integer expression to a linear form, or nil when
// the expression is not affine (division, modulus, variable products).
func intLin(e IntExpr) *linForm {
	switch x := e.(type) {
	case *IConst:
		return &linForm{c: x.Value, t: map[string]int64{}}
	case *IVar:
		return &linForm{t: map[string]int64{x.Name: 1}}
	case *ILin:
		f := &linForm{c: x.Const, t: map[string]int64{}}
		for _, t := range x.Terms {
			f.addTerm(t.Var, t.Coeff)
		}
		return f
	case *IBin:
		l := intLin(x.L)
		r := intLin(x.R)
		if l == nil || r == nil {
			return nil
		}
		switch x.Op {
		case '+':
			l.c += r.c
			for name, c := range r.t {
				l.addTerm(name, c)
			}
			return l
		case '-':
			l.c -= r.c
			for name, c := range r.t {
				l.addTerm(name, -c)
			}
			return l
		case '*':
			if len(r.t) == 0 {
				l.scale(r.c)
				return l
			}
			if len(l.t) == 0 {
				r.scale(l.c)
				return r
			}
		}
		return nil
	}
	return nil
}

// toILin renders a linear form back to an IntExpr with sorted terms.
func (f *linForm) toILin() IntExpr {
	lin := &ILin{Const: f.c}
	for _, name := range f.vars() {
		lin.Terms = append(lin.Terms, ITerm{Var: name, Coeff: f.t[name]})
	}
	return lin
}

// intVars adds every variable mentioned by an integer expression.
func intVars(e IntExpr, out map[string]bool) {
	switch x := e.(type) {
	case *IVar:
		out[x.Name] = true
	case *ILin:
		for _, t := range x.Terms {
			out[t.Var] = true
		}
	case *IBin:
		intVars(x.L, out)
		intVars(x.R, out)
	case *IIdx:
		for _, s := range x.Subs {
			intVars(s, out)
		}
	}
}

// intHasDiv reports whether evaluating the expression can fail
// (integer division or modulus by zero, or a bounds-checked indirect
// subscript read).
func intHasDiv(e IntExpr) bool {
	switch x := e.(type) {
	case *IBin:
		if x.Op == '/' || x.Op == '%' {
			return true
		}
		return intHasDiv(x.L) || intHasDiv(x.R)
	case *IIdx:
		if x.CheckBounds {
			return true
		}
		for _, s := range x.Subs {
			if intHasDiv(s) {
				return true
			}
		}
	}
	return false
}

// exprInfo accumulates what a float expression touches.
type exprInfo struct {
	vars       map[string]bool // integer variables read
	scalars    map[string]bool // float scalars read
	arrays     map[string]bool // arrays read
	anyChecked bool            // contains a bounds- or defined-checked read
}

func newExprInfo() *exprInfo {
	return &exprInfo{vars: map[string]bool{}, scalars: map[string]bool{}, arrays: map[string]bool{}}
}

// walkI records what an integer expression touches: the variables it
// reads and, for indirect IIdx subscripts, the array whose contents it
// depends on (a write to that array changes the expression's value, so
// invariance analyses must see the read).
func (in *exprInfo) walkI(e IntExpr) {
	switch x := e.(type) {
	case *IVar:
		in.vars[x.Name] = true
	case *ILin:
		for _, t := range x.Terms {
			in.vars[t.Var] = true
		}
	case *IBin:
		in.walkI(x.L)
		in.walkI(x.R)
	case *IIdx:
		in.arrays[x.Array] = true
		if x.CheckBounds {
			in.anyChecked = true
		}
		for _, s := range x.Subs {
			in.walkI(s)
		}
	}
}

func (in *exprInfo) walkV(e VExpr) {
	switch x := e.(type) {
	case *VConst:
	case *VFromInt:
		in.walkI(x.X)
	case *VScalar:
		in.scalars[x.Name] = true
	case *ARef:
		in.arrays[x.Array] = true
		if x.CheckBounds || x.CheckDefined {
			in.anyChecked = true
		}
		for _, s := range x.Subs {
			in.walkI(s)
		}
		if x.Off != nil {
			in.walkI(x.Off)
		}
	case *VBin:
		in.walkV(x.L)
		in.walkV(x.R)
	case *VNeg:
		in.walkV(x.X)
	case *VCall:
		for _, a := range x.Args {
			in.walkV(a)
		}
	case *VCond:
		in.walkB(x.C)
		in.walkV(x.T)
		in.walkV(x.E)
	}
}

func (in *exprInfo) walkB(e BExpr) {
	switch x := e.(type) {
	case *BVerify:
		in.arrays[x.Array] = true
	case *BCmpInt:
		in.walkI(x.L)
		in.walkI(x.R)
	case *BCmpFloat:
		in.walkV(x.L)
		in.walkV(x.R)
	case *BAnd:
		in.walkB(x.L)
		in.walkB(x.R)
	case *BOr:
		in.walkB(x.L)
		in.walkB(x.R)
	case *BNot:
		in.walkB(x.X)
	}
}

// stmtEffects summarizes a statement list's writes and bindings.
type stmtEffects struct {
	arraysWritten  map[string]bool
	scalarsWritten map[string]bool
	boundVars      map[string]bool
}

func collectEffects(stmts []Stmt, eff *stmtEffects) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			eff.boundVars[x.Var] = true
			for _, ind := range x.Inds {
				eff.boundVars[ind.Name] = true
			}
			collectEffects(x.Body, eff)
		case *If:
			collectEffects(x.Then, eff)
			collectEffects(x.Else, eff)
		case *Assign:
			eff.arraysWritten[x.Array] = true
		case *SetScalar:
			eff.scalarsWritten[x.Name] = true
		case *CopyArray:
			eff.arraysWritten[x.Dst] = true
		case *Fill:
			eff.arraysWritten[x.Array] = true
		case *CheckFull, *Fail:
		}
	}
}

// mentionsScalar reports whether the statement list reads or writes the
// scalar anywhere.
func mentionsScalar(stmts []Stmt, name string) bool {
	found := false
	var inExpr func(e VExpr)
	inExpr = func(e VExpr) {
		if found {
			return
		}
		info := newExprInfo()
		info.walkV(e)
		if info.scalars[name] {
			found = true
		}
	}
	var walk func(list []Stmt)
	walk = func(list []Stmt) {
		for _, s := range list {
			if found {
				return
			}
			switch x := s.(type) {
			case *Loop:
				walk(x.Body)
			case *If:
				info := newExprInfo()
				info.walkB(x.Cond)
				if info.scalars[name] {
					found = true
					return
				}
				walk(x.Then)
				walk(x.Else)
			case *Assign:
				inExpr(x.Rhs)
			case *SetScalar:
				if x.Name == name {
					found = true
					return
				}
				inExpr(x.Rhs)
			}
		}
	}
	walk(stmts)
	return found
}

// ---------------------------------------------------------------------------
// Pass: invariant hoisting and unswitching
// ---------------------------------------------------------------------------

// hoistFromLoop lifts loop-invariant work out of L. It returns the
// statements to run once before the loop plus the replacement for the
// loop itself (an If wrapping it after unswitching, or the loop
// unchanged). The loop's trip count is known ≥ 1 here (zero-trip loops
// were deleted), which is what makes moving iteration-1 work before the
// loop header sound.
func (o *optimizer) hoistFromLoop(L *Loop, env map[string]loopRange) (pre []Stmt, out []Stmt) {
	eff := &stmtEffects{
		arraysWritten:  map[string]bool{},
		scalarsWritten: map[string]bool{},
		boundVars:      map[string]bool{L.Var: true},
	}
	collectEffects(L.Body, eff)

	// Invariant scalar bindings: a SetScalar whose right-hand side only
	// reads state the loop never writes computes the same value every
	// iteration; move it before the loop when no earlier statement in
	// the body could observe the scalar's pre-loop value.
	var kept []Stmt
	prefixMentions := func(name string) bool {
		return mentionsScalar(kept, name)
	}
	writesOf := func(name string) int {
		n := 0
		var count func(list []Stmt)
		count = func(list []Stmt) {
			for _, s := range list {
				switch x := s.(type) {
				case *Loop:
					count(x.Body)
				case *If:
					count(x.Then)
					count(x.Else)
				case *SetScalar:
					if x.Name == name {
						n++
					}
				}
			}
		}
		count(L.Body)
		return n
	}
	for _, s := range L.Body {
		ss, isSet := s.(*SetScalar)
		if !isSet || !o.exprInvariant(ss.Rhs, eff) || writesOf(ss.Name) != 1 || prefixMentions(ss.Name) {
			kept = append(kept, s)
			continue
		}
		pre = append(pre, ss)
		o.stats.HoistedScalars++
	}
	L.Body = kept

	// Maximal invariant subexpressions of unconditionally executed
	// right-hand sides become fresh scalars bound once before the loop.
	for _, s := range L.Body {
		switch x := s.(type) {
		case *Assign:
			x.Rhs = o.hoistSubexprs(x.Rhs, eff, &pre)
		case *SetScalar:
			x.Rhs = o.hoistSubexprs(x.Rhs, eff, &pre)
		}
	}

	out = []Stmt{L}
	if repl := o.unswitch(L, eff); repl != nil {
		out = []Stmt{repl}
	}
	return pre, out
}

// exprInvariant reports whether the float expression is loop-invariant:
// it mentions no variable bound by the loop and reads no array or
// scalar the loop writes.
func (o *optimizer) exprInvariant(e VExpr, eff *stmtEffects) bool {
	info := newExprInfo()
	info.walkV(e)
	for v := range info.vars {
		if eff.boundVars[v] {
			return false
		}
	}
	for s := range info.scalars {
		if eff.scalarsWritten[s] {
			return false
		}
	}
	for a := range info.arrays {
		if eff.arraysWritten[a] {
			return false
		}
	}
	return true
}

// hoistSubexprs replaces maximal invariant non-trivial subexpressions
// of e with fresh scalars, appending their bindings to *pre. Only
// unconditionally evaluated positions are rewritten (VCond branches are
// left alone — hoisting them could evaluate an expression the original
// program never ran).
func (o *optimizer) hoistSubexprs(e VExpr, eff *stmtEffects, pre *[]Stmt) VExpr {
	switch e.(type) {
	case *VBin, *VNeg, *VCall:
		if o.exprInvariant(e, eff) {
			name := o.fresh("h", &o.hSeq)
			o.prog.Scalars = append(o.prog.Scalars, name)
			*pre = append(*pre, &SetScalar{Name: name, Rhs: e})
			o.stats.HoistedExprs++
			return &VScalar{Name: name}
		}
	}
	switch x := e.(type) {
	case *VBin:
		x.L = o.hoistSubexprs(x.L, eff, pre)
		x.R = o.hoistSubexprs(x.R, eff, pre)
	case *VNeg:
		x.X = o.hoistSubexprs(x.X, eff, pre)
	case *VCall:
		for i, a := range x.Args {
			x.Args[i] = o.hoistSubexprs(a, eff, pre)
		}
	}
	return e
}

// boolInvariant reports whether the condition is invariant in the
// loop: no variable bound by the loop, and no read of an array or
// scalar the loop writes (float comparisons go through exprInvariant
// for that check).
func (o *optimizer) boolInvariant(e BExpr, eff *stmtEffects) bool {
	switch x := e.(type) {
	case *BConst:
		return true
	case *BCmpInt:
		info := newExprInfo()
		info.walkI(x.L)
		info.walkI(x.R)
		for v := range info.vars {
			if eff.boundVars[v] {
				return false
			}
		}
		for a := range info.arrays {
			if eff.arraysWritten[a] {
				return false
			}
		}
		return true
	case *BCmpFloat:
		return o.exprInvariant(x.L, eff) && o.exprInvariant(x.R, eff)
	case *BAnd:
		return o.boolInvariant(x.L, eff) && o.boolInvariant(x.R, eff)
	case *BOr:
		return o.boolInvariant(x.L, eff) && o.boolInvariant(x.R, eff)
	case *BNot:
		return o.boolInvariant(x.X, eff)
	}
	return false
}

// boolCanFail reports whether evaluating the condition can raise a
// runtime error: integer division/modulus by zero, or a bounds- or
// definedness-checked array read. Float division is total (IEEE).
func boolCanFail(e BExpr) bool {
	switch x := e.(type) {
	case *BCmpInt:
		return intHasDiv(x.L) || intHasDiv(x.R)
	case *BCmpFloat:
		return vexprCanFail(x.L) || vexprCanFail(x.R)
	case *BAnd:
		return boolCanFail(x.L) || boolCanFail(x.R)
	case *BOr:
		return boolCanFail(x.L) || boolCanFail(x.R)
	case *BNot:
		return boolCanFail(x.X)
	}
	return false
}

// vexprCanFail reports whether evaluating the float expression can
// raise a runtime error (an embedded integer division, or a checked
// array read whose check could fire).
func vexprCanFail(e VExpr) bool {
	switch x := e.(type) {
	case *VFromInt:
		return intHasDiv(x.X)
	case *ARef:
		if x.CheckBounds || x.CheckDefined {
			return true
		}
		for _, s := range x.Subs {
			if intHasDiv(s) {
				return true
			}
		}
		return x.Off != nil && intHasDiv(x.Off)
	case *VBin:
		return vexprCanFail(x.L) || vexprCanFail(x.R)
	case *VNeg:
		return vexprCanFail(x.X)
	case *VCall:
		for _, a := range x.Args {
			if vexprCanFail(a) {
				return true
			}
		}
	case *VCond:
		return boolCanFail(x.C) || vexprCanFail(x.T) || vexprCanFail(x.E)
	}
	return false
}

// unswitch moves an invariant guard out of a loop whose body is a
// single If. Three shapes:
//
//	do v { if inv then T else E }   ⇒  if inv then do v {T} else do v {E}
//	do v { if inv then T }          ⇒  if inv then do v {T}
//	do v { if inv && var then T }   ⇒  if inv then do v { if var then T }
//
// The whole-condition forms are sound even when the condition can fail
// (divide by zero): the If is the body's only statement, so iteration 1
// would have evaluated the condition first anyway, and trip ≥ 1. The
// conjunct-splitting form additionally requires the hoisted conjuncts
// to be total, because && short-circuits: the original loop might never
// have evaluated them.
func (o *optimizer) unswitch(L *Loop, eff *stmtEffects) Stmt {
	if len(L.Body) != 1 {
		return nil
	}
	fi, ok := L.Body[0].(*If)
	if !ok {
		return nil
	}
	if o.boolInvariant(fi.Cond, eff) {
		o.stats.Unswitched++
		if len(fi.Else) == 0 {
			L.Body = fi.Then
			return &If{Cond: fi.Cond, Then: []Stmt{L}}
		}
		elseLoop := &Loop{Var: L.Var, From: L.From, To: L.To, Step: L.Step, Parallel: L.Parallel, Body: fi.Else}
		L.Body = fi.Then
		return &If{Cond: fi.Cond, Then: []Stmt{L}, Else: []Stmt{elseLoop}}
	}
	if len(fi.Else) != 0 {
		return nil
	}
	// Split invariant conjuncts off a conjunction guard.
	conj := flattenAnd(fi.Cond)
	var inv, variant []BExpr
	for _, c := range conj {
		if o.boolInvariant(c, eff) && !boolCanFail(c) {
			inv = append(inv, c)
		} else {
			variant = append(variant, c)
		}
	}
	if len(inv) == 0 || len(variant) == 0 {
		return nil
	}
	o.stats.Unswitched++
	fi.Cond = andAll(variant)
	return &If{Cond: andAll(inv), Then: []Stmt{L}}
}

func flattenAnd(e BExpr) []BExpr {
	if x, ok := e.(*BAnd); ok {
		return append(flattenAnd(x.L), flattenAnd(x.R)...)
	}
	return []BExpr{e}
}

func andAll(cs []BExpr) BExpr {
	e := cs[0]
	for _, c := range cs[1:] {
		e = &BAnd{L: e, R: c}
	}
	return e
}

// ---------------------------------------------------------------------------
// Pass: loop fusion
// ---------------------------------------------------------------------------

// fuseAdjacent merges runs of adjacent loops with identical headers
// when the dependence test permits.
func (o *optimizer) fuseAdjacent(list []Stmt, env map[string]loopRange) []Stmt {
	var out []Stmt
	for _, s := range list {
		cur, isLoop := s.(*Loop)
		if isLoop && len(out) > 0 {
			if prev, ok := out[len(out)-1].(*Loop); ok {
				if fused := o.fuse(prev, cur, env); fused != nil {
					out[len(out)-1] = fused
					o.stats.FusedLoops++
					continue
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// fuse merges l2 into l1 when both run the same iteration space in the
// same direction and interleaving the bodies preserves every cross-body
// dependence. Returns nil when fusion is not provably legal.
//
// Legality: the original order runs all of l1 before any of l2, so a
// dependence from l2's instance at v₂ to l1's instance at v₁ is
// preserved by fusion only when v₁ does not come after v₂ in iteration
// order. For each conflicting access pair the test below either proves
// the instances never touch the same element (interval disjointness or
// non-divisible distance over the concrete ranges) or pins the distance
// v₁−v₂ to a constant d and requires d·sign(step) ≤ 0 — i.e. the l1
// instance writing/reading the shared element runs no later than the l2
// instance, exactly as in the unfused order.
func (o *optimizer) fuse(l1, l2 *Loop, env map[string]loopRange) *Loop {
	if l1.From != l2.From || l1.To != l2.To || l1.Step != l2.Step {
		return nil // different ranges or directions
	}
	if len(l1.Inds) > 0 || len(l2.Inds) > 0 {
		return nil // already strength-reduced (not at this level; be safe)
	}
	body2 := l2.Body
	if l2.Var != l1.Var {
		if stmtsMentionVar(body2, l1.Var) {
			return nil // renaming would capture
		}
		body2 = renameVar(body2, l2.Var, l1.Var)
	}
	r := loopRange{l1.From, l1.To, l1.Step}
	a1 := collectAccesses(l1.Body)
	a2 := collectAccesses(body2)
	if a1.barrier || a2.barrier {
		return nil
	}
	// Scalar temporaries are loop-local pipelines; sharing any between
	// the bodies (in any read/write combination) is a dependence we do
	// not analyze — reject.
	for s := range a1.scalarW {
		if a2.scalarR[s] || a2.scalarW[s] {
			return nil
		}
	}
	for s := range a1.scalarR {
		if a2.scalarW[s] {
			return nil
		}
	}
	sameIterOnly := true
	for i := range a1.arr {
		for j := range a2.arr {
			safe, carried := pairSafe(&a1.arr[i], &a2.arr[j], l1.Var, r, env)
			if !safe {
				return nil
			}
			if carried {
				sameIterOnly = false
			}
		}
	}
	parallel := l1.Parallel && l2.Parallel && sameIterOnly
	return &Loop{
		Var:  l1.Var,
		From: l1.From, To: l1.To, Step: l1.Step,
		Parallel: parallel,
		// Both halves individually tolerate concurrency (parallel or
		// doacross) and fusion proved the interleaving legal: keep the
		// fused loop a doacross candidate — the planning pass re-derives
		// the concrete distances before scheduling anything.
		Doacross: !parallel && (l1.Parallel || l1.Doacross) && (l2.Parallel || l2.Doacross),
		Body:     append(l1.Body, body2...),
	}
}

// access is one array touch with per-dimension affine subscript forms
// (nil entries are non-affine) and the ranges of variables bound inside
// the body it came from (those vary independently between the two
// bodies; everything else is shared).
type access struct {
	array string
	subs  []*linForm
	write bool
	whole bool // Fill/CopyArray: touches every element
	inner map[string]loopRange
}

type accessSet struct {
	arr              []access
	scalarR, scalarW map[string]bool
	barrier          bool
}

func collectAccesses(stmts []Stmt) *accessSet {
	out := &accessSet{scalarR: map[string]bool{}, scalarW: map[string]bool{}}
	collectAccStmts(stmts, map[string]loopRange{}, out)
	return out
}

func collectAccStmts(stmts []Stmt, bound map[string]loopRange, out *accessSet) {
	addExpr := func(e VExpr) { collectAccExpr(e, bound, out) }
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			b := copyEnv(bound)
			b[x.Var] = loopRange{x.From, x.To, x.Step}
			collectAccStmts(x.Body, b, out)
		case *If:
			collectAccBool(x.Cond, bound, out)
			collectAccStmts(x.Then, bound, out)
			collectAccStmts(x.Else, bound, out)
		case *Assign:
			out.arr = append(out.arr, makeAccess(x.Array, x.Subs, true, bound))
			for _, sub := range x.Subs {
				collectAccInt(sub, out)
			}
			collectAccInt(x.Off, out)
			addExpr(x.Rhs)
		case *SetScalar:
			out.scalarW[x.Name] = true
			addExpr(x.Rhs)
		case *CopyArray:
			out.arr = append(out.arr,
				access{array: x.Dst, write: true, whole: true},
				access{array: x.Src, whole: true})
		case *Fill:
			out.arr = append(out.arr, access{array: x.Array, write: true, whole: true})
		case *CheckFull, *Fail:
			out.barrier = true
		}
	}
}

func collectAccExpr(e VExpr, bound map[string]loopRange, out *accessSet) {
	switch x := e.(type) {
	case *VScalar:
		out.scalarR[x.Name] = true
	case *ARef:
		out.arr = append(out.arr, makeAccess(x.Array, x.Subs, false, bound))
		for _, sub := range x.Subs {
			collectAccInt(sub, out)
		}
		collectAccInt(x.Off, out)
	case *VFromInt:
		collectAccInt(x.X, out)
	case *VBin:
		collectAccExpr(x.L, bound, out)
		collectAccExpr(x.R, bound, out)
	case *VNeg:
		collectAccExpr(x.X, bound, out)
	case *VCall:
		for _, a := range x.Args {
			collectAccExpr(a, bound, out)
		}
	case *VCond:
		collectAccBool(x.C, bound, out)
		collectAccExpr(x.T, bound, out)
		collectAccExpr(x.E, bound, out)
	}
}

// collectAccInt records the indirect (IIdx) reads inside an integer
// expression as whole-array reads: their element positions are
// data-dependent, so overlap analysis must assume any element.
func collectAccInt(e IntExpr, out *accessSet) {
	switch x := e.(type) {
	case *IBin:
		collectAccInt(x.L, out)
		collectAccInt(x.R, out)
	case *IIdx:
		out.arr = append(out.arr, access{array: x.Array, whole: true})
		for _, s := range x.Subs {
			collectAccInt(s, out)
		}
	}
}

func collectAccBool(e BExpr, bound map[string]loopRange, out *accessSet) {
	switch x := e.(type) {
	case *BVerify:
		out.arr = append(out.arr, access{array: x.Array, whole: true})
	case *BCmpInt:
		collectAccInt(x.L, out)
		collectAccInt(x.R, out)
	case *BCmpFloat:
		collectAccExpr(x.L, bound, out)
		collectAccExpr(x.R, bound, out)
	case *BAnd:
		collectAccBool(x.L, bound, out)
		collectAccBool(x.R, bound, out)
	case *BOr:
		collectAccBool(x.L, bound, out)
		collectAccBool(x.R, bound, out)
	case *BNot:
		collectAccBool(x.X, bound, out)
	}
}

func makeAccess(arr string, subs []IntExpr, write bool, bound map[string]loopRange) access {
	a := access{array: arr, write: write, inner: copyEnv(bound)}
	a.subs = make([]*linForm, len(subs))
	for i, s := range subs {
		a.subs[i] = intLin(s)
	}
	return a
}

// pairSafe decides whether the cross-body access pair is compatible
// with fusion over loop variable v with range r. carried reports a
// proven dependence at distance ≠ 0 (which forbids keeping the fused
// loop parallel).
func pairSafe(x1, x2 *access, v string, r loopRange, env map[string]loopRange) (safe, carried bool) {
	if !x1.write && !x2.write {
		return true, false
	}
	if x1.array != x2.array {
		return true, false
	}
	if x1.whole || x2.whole || len(x1.subs) != len(x2.subs) {
		return false, false
	}
	// Per dimension: either prove the subscripts never coincide, or pin
	// the iteration distance v1−v2 to a constant.
	var dist int64
	haveDist := false
	for d := range x1.subs {
		f1, f2 := x1.subs[d], x2.subs[d]
		if f1 == nil || f2 == nil {
			continue // non-affine: no information from this dimension
		}
		res := dimAnalyze(f1, f2, x1.inner, x2.inner, v, r, env)
		switch res.kind {
		case dimDisjoint:
			return true, false
		case dimExact:
			if haveDist && dist != res.d {
				return true, false // inconsistent constraints: no common element
			}
			haveDist, dist = true, res.d
		}
	}
	if !haveDist {
		return false, false // nothing proven: assume the worst
	}
	// dist = v1 − v2 in value space; feasible only at step multiples
	// within the range span.
	lo, hi := r.valueBounds()
	span := hi - lo
	if dist%r.step != 0 || dist > span || dist < -span {
		return true, false
	}
	iterDist := dist / r.step // t1 − t2 in iteration order
	if iterDist > 0 {
		return false, false // l1's instance would now run after l2's
	}
	return true, iterDist != 0
}

type dimResult struct {
	kind int // dimUnknown, dimDisjoint, dimExact
	d    int64
}

const (
	dimUnknown = iota
	dimDisjoint
	dimExact
)

// dimAnalyze compares the affine subscripts of the two accesses in one
// dimension. Variables bound inside either body range independently;
// the fused loop variable v ranges independently on each side (v1, v2);
// every other variable is an enclosing loop variable holding the same
// value for both. Returns dimDisjoint when f1 = f2 has no solution over
// the concrete ranges, dimExact when any solution forces v1 − v2 = d.
func dimAnalyze(f1, f2 *linForm, in1, in2 map[string]loopRange, v string, r loopRange, env map[string]loopRange) dimResult {
	// Interval of f1 − f2 and the structural facts needed for an exact
	// distance: coefficient of v on each side, presence of independent
	// (inner) terms, non-cancelling shared terms.
	a1, a2 := f1.t[v], f2.t[v]
	lo := float64(f1.c - f2.c)
	hi := lo
	addRange := func(coeff int64, rng loopRange, known bool) {
		if coeff == 0 {
			return
		}
		if !known {
			lo, hi = math.Inf(-1), math.Inf(1)
			return
		}
		vlo, vhi := rng.valueBounds()
		x1 := float64(coeff) * float64(vlo)
		x2 := float64(coeff) * float64(vhi)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		lo += x1
		hi += x2
	}
	exact := true
	shared := map[string]int64{}
	handleSide := func(f *linForm, in map[string]loopRange, sign int64) {
		for name, coeff := range f.t {
			if name == v {
				continue
			}
			if rng, isInner := in[name]; isInner {
				addRange(sign*coeff, rng, true)
				exact = false // independent term: distance not pinned
				continue
			}
			shared[name] += sign * coeff
		}
	}
	handleSide(f1, in1, 1)
	handleSide(f2, in2, -1)
	for name, net := range shared {
		rng, known := env[name]
		addRange(net, rng, known)
		if net != 0 {
			exact = false
		}
	}
	// v contributions: a1·v1 − a2·v2 with v1, v2 independent over r.
	addRange(a1, r, true)
	addRange(-a2, r, true)
	if lo > 0 || hi < 0 {
		return dimResult{kind: dimDisjoint}
	}
	if exact && a1 == a2 && a1 != 0 {
		// a·v1 + c1 = a·v2 + c2  ⇒  v1 − v2 = (c2 − c1)/a.
		num := f2.c - f1.c
		if num%a1 != 0 {
			return dimResult{kind: dimDisjoint}
		}
		return dimResult{kind: dimExact, d: num / a1}
	}
	return dimResult{kind: dimUnknown}
}

// stmtsMentionVar reports whether the variable name occurs anywhere in
// the statements (as a binder or in any expression).
func stmtsMentionVar(stmts []Stmt, name string) bool {
	found := false
	check := func(vars map[string]bool) {
		if vars[name] {
			found = true
		}
	}
	var walkI func(e IntExpr)
	walkI = func(e IntExpr) {
		vars := map[string]bool{}
		intVars(e, vars)
		check(vars)
	}
	var walkV func(e VExpr)
	walkV = func(e VExpr) {
		info := newExprInfo()
		info.walkV(e)
		check(info.vars)
	}
	var walk func(list []Stmt)
	walk = func(list []Stmt) {
		for _, s := range list {
			if found {
				return
			}
			switch x := s.(type) {
			case *Loop:
				if x.Var == name {
					found = true
					return
				}
				for _, ind := range x.Inds {
					if ind.Name == name {
						found = true
						return
					}
					walkI(ind.Init)
				}
				walk(x.Body)
			case *If:
				info := newExprInfo()
				info.walkB(x.Cond)
				check(info.vars)
				walk(x.Then)
				walk(x.Else)
			case *Assign:
				for _, sub := range x.Subs {
					walkI(sub)
				}
				if x.Off != nil {
					walkI(x.Off)
				}
				walkV(x.Rhs)
			case *SetScalar:
				walkV(x.Rhs)
			}
		}
	}
	walk(stmts)
	return found
}

// renameVar returns the statements with every free occurrence of the
// integer variable from replaced by to. Callers must ensure the
// statements neither bind from nor mention to.
func renameVar(stmts []Stmt, from, to string) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = renameStmt(s, from, to)
	}
	return out
}

func renameStmt(s Stmt, from, to string) Stmt {
	switch x := s.(type) {
	case *Loop:
		cp := *x
		cp.Inds = make([]Ind, len(x.Inds))
		for i, ind := range x.Inds {
			cp.Inds[i] = Ind{Name: ind.Name, Init: renameInt(ind.Init, from, to), Step: ind.Step}
		}
		cp.Body = renameVar(x.Body, from, to)
		return &cp
	case *If:
		cp := *x
		cp.Cond = renameBool(x.Cond, from, to)
		cp.Then = renameVar(x.Then, from, to)
		cp.Else = renameVar(x.Else, from, to)
		return &cp
	case *Assign:
		cp := *x
		cp.Subs = make([]IntExpr, len(x.Subs))
		for i, sub := range x.Subs {
			cp.Subs[i] = renameInt(sub, from, to)
		}
		if x.Off != nil {
			cp.Off = renameInt(x.Off, from, to)
		}
		cp.Rhs = renameV(x.Rhs, from, to)
		return &cp
	case *SetScalar:
		cp := *x
		cp.Rhs = renameV(x.Rhs, from, to)
		return &cp
	default:
		return s
	}
}

func renameInt(e IntExpr, from, to string) IntExpr {
	switch x := e.(type) {
	case *IVar:
		if x.Name == from {
			return &IVar{Name: to}
		}
		return x
	case *ILin:
		cp := &ILin{Const: x.Const, Terms: make([]ITerm, len(x.Terms))}
		for i, t := range x.Terms {
			if t.Var == from {
				t.Var = to
			}
			cp.Terms[i] = t
		}
		return cp
	case *IBin:
		return &IBin{Op: x.Op, L: renameInt(x.L, from, to), R: renameInt(x.R, from, to)}
	case *IIdx:
		cp := &IIdx{Array: x.Array, Subs: make([]IntExpr, len(x.Subs)), CheckBounds: x.CheckBounds}
		for i, s := range x.Subs {
			cp.Subs[i] = renameInt(s, from, to)
		}
		return cp
	default:
		return e
	}
}

func renameV(e VExpr, from, to string) VExpr {
	switch x := e.(type) {
	case *VFromInt:
		return &VFromInt{X: renameInt(x.X, from, to)}
	case *ARef:
		cp := *x
		cp.Subs = make([]IntExpr, len(x.Subs))
		for i, sub := range x.Subs {
			cp.Subs[i] = renameInt(sub, from, to)
		}
		if x.Off != nil {
			cp.Off = renameInt(x.Off, from, to)
		}
		return &cp
	case *VBin:
		return &VBin{Op: x.Op, L: renameV(x.L, from, to), R: renameV(x.R, from, to)}
	case *VNeg:
		return &VNeg{X: renameV(x.X, from, to)}
	case *VCall:
		cp := &VCall{Fn: x.Fn, Args: make([]VExpr, len(x.Args))}
		for i, a := range x.Args {
			cp.Args[i] = renameV(a, from, to)
		}
		return cp
	case *VCond:
		return &VCond{C: renameBool(x.C, from, to), T: renameV(x.T, from, to), E: renameV(x.E, from, to)}
	default:
		return e
	}
}

func renameBool(e BExpr, from, to string) BExpr {
	switch x := e.(type) {
	case *BCmpInt:
		return &BCmpInt{Op: x.Op, L: renameInt(x.L, from, to), R: renameInt(x.R, from, to)}
	case *BCmpFloat:
		return &BCmpFloat{Op: x.Op, L: renameV(x.L, from, to), R: renameV(x.R, from, to)}
	case *BAnd:
		return &BAnd{L: renameBool(x.L, from, to), R: renameBool(x.R, from, to)}
	case *BOr:
		return &BOr{L: renameBool(x.L, from, to), R: renameBool(x.R, from, to)}
	case *BNot:
		return &BNot{X: renameBool(x.X, from, to)}
	default:
		return e
	}
}

// ---------------------------------------------------------------------------
// Pass: strength reduction
// ---------------------------------------------------------------------------

// accessSite is one rewritable array access in a loop's direct body.
type accessSite struct {
	form   *linForm // flattened row-major offset
	setOff func(IntExpr)
}

// strengthReduce rewrites the affine unchecked accesses of L's direct
// body (statements not nested in an inner loop) to incrementally
// maintained offsets. For each distinct variable-coefficient signature
// it allocates one induction register; accesses differing only in the
// constant share it through a constant delta. The register's Init is an
// affine form over enclosing loop variables — for the inner loop of a
// row-major 2-D nest this is precisely the precomputed row base.
func (o *optimizer) strengthReduce(L *Loop, env map[string]loopRange) {
	sites := o.collectSites(L.Body)
	if len(sites) == 0 {
		return
	}
	type group struct {
		base *linForm
		name string
	}
	groups := map[string]*group{}
	var order []string
	for _, site := range sites {
		vs := site.form.vars()
		sigParts := make([]string, len(vs))
		for i, name := range vs {
			sigParts[i] = fmt.Sprintf("%s*%d", name, site.form.t[name])
		}
		sig := strings.Join(sigParts, "|")
		if len(vs) == 0 {
			// Fully constant offset: no register needed.
			site.setOff(&ILin{Const: site.form.c})
			o.stats.ReducedAccesses++
			continue
		}
		g := groups[sig]
		if g == nil {
			g = &group{base: site.form}
			groups[sig] = g
			order = append(order, sig)
		}
		delta := site.form.c - g.base.c
		if g.name == "" {
			g.name = o.fresh("o", &o.indSeq)
		}
		off := &ILin{Const: delta, Terms: []ITerm{{Var: g.name, Coeff: 1}}}
		site.setOff(off)
		o.stats.ReducedAccesses++
	}
	for _, sig := range order {
		g := groups[sig]
		a := g.base.t[L.Var]
		init := g.base.clone()
		delete(init.t, L.Var)
		init.c += a * L.From
		L.Inds = append(L.Inds, Ind{Name: g.name, Init: init.toILin(), Step: a * L.Step})
		o.stats.IndRegisters++
	}
}

// collectSites gathers the rewritable accesses of the loop's direct
// body: unchecked, all-affine subscripts over known variables, Off not
// already set. If branches (and VCond arms) are included — the offset
// arithmetic is pure, so maintaining it for an access that does not
// execute is harmless — but nested loops are not (their accesses are
// reduced against their own header).
func (o *optimizer) collectSites(stmts []Stmt) []accessSite {
	var sites []accessSite
	var walkStmts func(list []Stmt)
	var walkV func(e VExpr)
	addARef := func(x *ARef) {
		if x.CheckBounds || x.Off != nil {
			return
		}
		if form := o.offsetForm(x.Array, x.Subs); form != nil {
			sites = append(sites, accessSite{form: form, setOff: func(e IntExpr) { x.Off = e }})
		}
	}
	var walkB func(e BExpr)
	walkB = func(e BExpr) {
		switch x := e.(type) {
		case *BCmpFloat:
			walkV(x.L)
			walkV(x.R)
		case *BAnd:
			walkB(x.L)
			walkB(x.R)
		case *BOr:
			walkB(x.L)
			walkB(x.R)
		case *BNot:
			walkB(x.X)
		}
	}
	walkV = func(e VExpr) {
		switch x := e.(type) {
		case *ARef:
			addARef(x)
		case *VBin:
			walkV(x.L)
			walkV(x.R)
		case *VNeg:
			walkV(x.X)
		case *VCall:
			for _, a := range x.Args {
				walkV(a)
			}
		case *VCond:
			walkB(x.C)
			walkV(x.T)
			walkV(x.E)
		}
	}
	walkStmts = func(list []Stmt) {
		for _, s := range list {
			switch x := s.(type) {
			case *Loop:
				// inner loops handle their own accesses
			case *If:
				walkB(x.Cond)
				walkStmts(x.Then)
				walkStmts(x.Else)
			case *Assign:
				if !x.CheckBounds && x.Off == nil {
					if form := o.offsetForm(x.Array, x.Subs); form != nil {
						xa := x
						sites = append(sites, accessSite{form: form, setOff: func(e IntExpr) { xa.Off = e }})
					}
				}
				walkV(x.Rhs)
			case *SetScalar:
				walkV(x.Rhs)
			}
		}
	}
	walkStmts(stmts)
	return sites
}

// offsetForm flattens an access's subscripts to the row-major linear
// offset form, or nil when any subscript is non-affine or the access
// does not match its declaration.
func (o *optimizer) offsetForm(arr string, subs []IntExpr) *linForm {
	d := o.prog.Decl(arr)
	if d == nil || len(subs) != d.B.Rank() {
		return nil
	}
	total := &linForm{t: map[string]int64{}}
	for dim, s := range subs {
		f := intLin(s)
		if f == nil {
			return nil
		}
		// total = total·extent + (f − lo)
		total.scale(d.B.Extent(dim))
		total.c += f.c - d.B.Lo[dim]
		for name, coeff := range f.t {
			total.addTerm(name, coeff)
		}
	}
	return total
}
