package loopir

import (
	"fmt"
	"sort"

	"arraycomp/internal/certify"
)

// Certification of stencil guard splits. The splitter (stencil.go)
// claims two things per split: the clones exactly tile the original
// iteration range (no point lost, none duplicated), and on each
// clone's subrange the resolved guard really is constant at the value
// whose arm was substituted. Both are re-proved here from scratch —
// the partition by interval arithmetic over the recorded ranges, the
// constancy by directly re-evaluating the recorded guard expression at
// each iteration (clamped to certify.ShadowClamp points per clone
// edge; every affine atom changes truth at most once inside a range,
// so the edges are where a mis-split hides, but a clamped pass is
// reported non-exhaustive all the same).
//
// A loop may carry several replay records: a clone produced by one
// split can itself be split again (or have a residual guard resolved
// in place), and each resolution appends its own record. Grouping is
// therefore over (loop, record) pairs keyed by the record ID, not over
// loops.

// splitMember is one loop's participation in one split group.
type splitMember struct {
	l   *Loop
	rec SplitRecord
}

// CertifySplits audits every stencil split recorded in p and returns
// the aggregated report.
func CertifySplits(p *Program) *certify.Report {
	rep := certify.NewReport()
	groups := map[int][]splitMember{}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *Loop:
				if x.Sten != nil {
					for _, rec := range x.Sten.Splits {
						groups[rec.ID] = append(groups[rec.ID], splitMember{l: x, rec: rec})
					}
				}
				walk(x.Body)
			case *If:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	walk(p.Stmts)
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rep.Record(certifySplit(id, groups[id]))
	}
	return rep
}

// certifySplit checks one split group.
func certifySplit(id int, members []splitMember) certify.Certificate {
	rec0 := members[0].rec
	claim := fmt.Sprintf("stencil split #%d of %s over [%d..%d]: partition exact, guard constant per part",
		id, members[0].l.Var, rec0.OrigFrom, rec0.OrigTo)
	falsify := func(witness []int64, detail string) certify.Certificate {
		return certify.Certificate{Layer: "stencil", Claim: claim, Status: certify.Falsified,
			Witness: witness, Detail: detail}
	}
	for _, m := range members {
		if m.rec.OrigFrom != rec0.OrigFrom || m.rec.OrigTo != rec0.OrigTo || m.l.Var != members[0].l.Var {
			return falsify(nil, "clones disagree on the split source range")
		}
		if m.l.Step != 1 {
			return falsify(nil, fmt.Sprintf("clone [%d..%d] has step %d; splits only cover unit-stride loops", m.l.From, m.l.To, m.l.Step))
		}
	}
	// Partition exactness: sorted clone ranges must tile the original.
	// A later re-split replaces one clone with several loops all
	// carrying this group's record, so the tiling is still exact.
	order := append([]splitMember(nil), members...)
	sort.Slice(order, func(i, j int) bool { return order[i].l.From < order[j].l.From })
	next := rec0.OrigFrom
	for _, m := range order {
		if m.l.From > next {
			return falsify([]int64{next}, fmt.Sprintf("iteration %d covered by no clone", next))
		}
		if m.l.From < next {
			return falsify([]int64{m.l.From}, fmt.Sprintf("iteration %d covered twice", m.l.From))
		}
		if m.l.To < m.l.From {
			return falsify(nil, fmt.Sprintf("clone [%d..%d] is empty", m.l.From, m.l.To))
		}
		next = m.l.To + 1
	}
	if next != rec0.OrigTo+1 {
		if next > rec0.OrigTo+1 {
			return falsify([]int64{rec0.OrigTo + 1}, "clones run past the original range")
		}
		return falsify([]int64{next}, fmt.Sprintf("iteration %d covered by no clone", next))
	}
	// Guard constancy: replay the recorded condition over each clone.
	exhaustive := true
	for _, m := range order {
		if m.rec.Guard == nil {
			return falsify(nil, fmt.Sprintf("clone [%d..%d] lost its guard record", m.l.From, m.l.To))
		}
		pts, all := clampRange(m.l.From, m.l.To, certify.ShadowClamp)
		exhaustive = exhaustive && all
		for _, v := range pts {
			if evalGuard(m.rec.Guard, m.l.Var, v) != m.rec.GuardVal {
				return falsify([]int64{v}, fmt.Sprintf(
					"guard is %v at %s=%d inside clone [%d..%d] resolved as %v",
					!m.rec.GuardVal, m.l.Var, v, m.l.From, m.l.To, m.rec.GuardVal))
			}
		}
	}
	return certify.Certificate{Layer: "stencil", Claim: claim, Status: certify.Certified, Exhaustive: exhaustive}
}

// clampRange enumerates [from, to], or its first and last budget/2
// points when wider than budget. Truth changes of an affine guard
// cluster at range edges, so the clamp keeps them in view; the bool
// reports full coverage.
func clampRange(from, to int64, budget int64) ([]int64, bool) {
	n := to - from + 1
	if n <= budget {
		pts := make([]int64, 0, n)
		for v := from; v <= to; v++ {
			pts = append(pts, v)
		}
		return pts, true
	}
	half := budget / 2
	pts := make([]int64, 0, 2*half)
	for v := from; v < from+half; v++ {
		pts = append(pts, v)
	}
	for v := to - half + 1; v <= to; v++ {
		pts = append(pts, v)
	}
	return pts, false
}
