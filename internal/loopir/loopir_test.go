package loopir

import (
	"strings"
	"testing"

	"arraycomp/internal/runtime"
)

// lin builds an affine subscript expression.
func lin(c int64, terms ...ITerm) *ILin { return &ILin{Const: c, Terms: terms} }

func term(v string, k int64) ITerm { return ITerm{Var: v, Coeff: k} }

func mustCompile(t *testing.T, p *Program) *Exec {
	t.Helper()
	ex, err := Compile(p)
	if err != nil {
		t.Fatalf("compile %s: %v", p.Name, err)
	}
	return ex
}

// squaresProgram builds: do i = 1..n: a[i] := i*i
func squaresProgram(n int64) *Program {
	return &Program{
		Name:   "squares",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
				&Assign{
					Array: "a",
					Subs:  []IntExpr{lin(0, term("i", 1))},
					Rhs:   &VFromInt{X: &IBin{Op: '*', L: &IVar{Name: "i"}, R: &IVar{Name: "i"}}},
				},
			}},
		},
	}
}

func TestSquares(t *testing.T) {
	ex := mustCompile(t, squaresProgram(10))
	out, err := ex.RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if got := out.At(i); got != float64(i*i) {
			t.Errorf("a[%d] = %v, want %d", i, got, i*i)
		}
	}
}

func TestBackwardLoop(t *testing.T) {
	// do i = 5..1 step -1: a[i] := if i == 5 then 1 else a[i+1]*2
	n := int64(5)
	p := &Program{
		Name:   "backward",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: n, To: 1, Step: -1, Body: []Stmt{
				&Assign{
					Array: "a",
					Subs:  []IntExpr{lin(0, term("i", 1))},
					Rhs: &VCond{
						C: &BCmpInt{Op: "==", L: &IVar{Name: "i"}, R: &IConst{Value: n}},
						T: &VConst{Value: 1},
						E: &VBin{Op: '*', L: &ARef{Array: "a", Subs: []IntExpr{lin(1, term("i", 1))}}, R: &VConst{Value: 2}},
					},
				},
			}},
		},
	}
	out, err := mustCompile(t, p).RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{16, 8, 4, 2, 1}
	for i := int64(1); i <= n; i++ {
		if out.At(i) != want[i-1] {
			t.Errorf("a[%d] = %v, want %v", i, out.At(i), want[i-1])
		}
	}
}

func TestWavefront2D(t *testing.T) {
	// The paper's wavefront on a 4×4 array, hand-lowered.
	n := int64(4)
	b := runtime.NewBounds2(1, 1, n, n)
	at := func(di, dj int64) *ARef {
		return &ARef{Array: "a", Subs: []IntExpr{lin(di, term("i", 1)), lin(dj, term("j", 1))}}
	}
	p := &Program{
		Name:   "wavefront",
		Arrays: []ArrayDecl{{Name: "a", B: b, Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "j", From: 1, To: n, Step: 1, Body: []Stmt{
				&Assign{Array: "a", Subs: []IntExpr{lin(1), lin(0, term("j", 1))}, Rhs: &VConst{Value: 1}},
			}},
			&Loop{Var: "i", From: 2, To: n, Step: 1, Body: []Stmt{
				&Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 1)), lin(1)}, Rhs: &VConst{Value: 1}},
			}},
			&Loop{Var: "i", From: 2, To: n, Step: 1, Body: []Stmt{
				&Loop{Var: "j", From: 2, To: n, Step: 1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
						Rhs: &VBin{Op: '+',
							L: &VBin{Op: '+', L: at(-1, 0), R: at(0, -1)},
							R: at(-1, -1)},
					},
				}},
			}},
		},
	}
	out, err := mustCompile(t, p).RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: Delannoy-like recurrence computed directly.
	ref := map[[2]int64]float64{}
	for j := int64(1); j <= n; j++ {
		ref[[2]int64{1, j}] = 1
	}
	for i := int64(2); i <= n; i++ {
		ref[[2]int64{i, 1}] = 1
	}
	for i := int64(2); i <= n; i++ {
		for j := int64(2); j <= n; j++ {
			ref[[2]int64{i, j}] = ref[[2]int64{i - 1, j}] + ref[[2]int64{i, j - 1}] + ref[[2]int64{i - 1, j - 1}]
		}
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			if got := out.At(i, j); got != ref[[2]int64{i, j}] {
				t.Errorf("a[%d,%d] = %v, want %v", i, j, got, ref[[2]int64{i, j}])
			}
		}
	}
}

func TestCollisionCheckFires(t *testing.T) {
	p := &Program{
		Name:   "collide",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 4), Role: RoleOut, TrackDefs: true}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: 4, Step: 1, Body: []Stmt{
				// a[(i mod 2) + 1] := i  — collides for i=1,3 and i=2,4.
				&Assign{
					Array:          "a",
					Subs:           []IntExpr{&IBin{Op: '+', L: &IBin{Op: '%', L: &IVar{Name: "i"}, R: &IConst{Value: 2}}, R: &IConst{Value: 1}}},
					Rhs:            &VFromInt{X: &IVar{Name: "i"}},
					CheckCollision: true,
				},
			}},
		},
	}
	_, err := mustCompile(t, p).RunResult(nil)
	if err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("want collision error, got %v", err)
	}
}

func TestCheckFullDetectsEmpties(t *testing.T) {
	p := &Program{
		Name:   "partial",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 4), Role: RoleOut, TrackDefs: true}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: 2, Step: 1, Body: []Stmt{
				&Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 1))}, Rhs: &VConst{Value: 1}},
			}},
			&CheckFull{Array: "a"},
		},
	}
	_, err := mustCompile(t, p).RunResult(nil)
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("want empties error, got %v", err)
	}
}

func TestBoundsCheckFires(t *testing.T) {
	p := &Program{
		Name:   "oob",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 3), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: 4, Step: 1, Body: []Stmt{
				&Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 1))}, Rhs: &VConst{Value: 1}, CheckBounds: true},
			}},
		},
	}
	_, err := mustCompile(t, p).RunResult(nil)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("want bounds error, got %v", err)
	}
}

func TestGuardsAndIf(t *testing.T) {
	// do i=1..6: if i mod 2 == 0 then a[i] := 1 else a[i] := -1
	p := &Program{
		Name:   "guards",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 6), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: 6, Step: 1, Body: []Stmt{
				&If{
					Cond: &BCmpInt{Op: "==", L: &IBin{Op: '%', L: &IVar{Name: "i"}, R: &IConst{Value: 2}}, R: &IConst{Value: 0}},
					Then: []Stmt{&Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 1))}, Rhs: &VConst{Value: 1}}},
					Else: []Stmt{&Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 1))}, Rhs: &VConst{Value: -1}}},
				},
			}},
		},
	}
	out, err := mustCompile(t, p).RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 6; i++ {
		want := float64(-1)
		if i%2 == 0 {
			want = 1
		}
		if out.At(i) != want {
			t.Errorf("a[%d] = %v, want %v", i, out.At(i), want)
		}
	}
}

func TestInOutUpdatesInPlace(t *testing.T) {
	in := runtime.NewStrict(runtime.NewBounds1(1, 4))
	for i := int64(1); i <= 4; i++ {
		in.Set(float64(i), i)
	}
	p := &Program{
		Name:   "scale",
		Arrays: []ArrayDecl{{Name: "a", B: in.B, Role: RoleInOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: 4, Step: 1, Body: []Stmt{
				&Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 1))},
					Rhs: &VBin{Op: '*', L: &ARef{Array: "a", Subs: []IntExpr{lin(0, term("i", 1))}}, R: &VConst{Value: 10}}},
			}},
		},
	}
	out, err := mustCompile(t, p).RunResult(map[string]*runtime.Strict{"a": in})
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Error("RoleInOut must alias the input array")
	}
	if in.At(3) != 30 {
		t.Errorf("a[3] = %v, want 30", in.At(3))
	}
}

func TestScalarTempsAndCopy(t *testing.T) {
	// Node-splitting shape: t := a[1]; a[1] := a[2]; a[2] := t (swap).
	in := runtime.NewStrict(runtime.NewBounds1(1, 2))
	in.Set(10, 1)
	in.Set(20, 2)
	p := &Program{
		Name:    "swap",
		Arrays:  []ArrayDecl{{Name: "a", B: in.B, Role: RoleInOut}},
		Scalars: []string{"t"},
		Stmts: []Stmt{
			&SetScalar{Name: "t", Rhs: &ARef{Array: "a", Subs: []IntExpr{lin(1)}}},
			&Assign{Array: "a", Subs: []IntExpr{lin(1)}, Rhs: &ARef{Array: "a", Subs: []IntExpr{lin(2)}}},
			&Assign{Array: "a", Subs: []IntExpr{lin(2)}, Rhs: &VScalar{Name: "t"}},
		},
	}
	if _, err := mustCompile(t, p).RunResult(map[string]*runtime.Strict{"a": in}); err != nil {
		t.Fatal(err)
	}
	if in.At(1) != 20 || in.At(2) != 10 {
		t.Errorf("swap wrong: %v %v", in.At(1), in.At(2))
	}
}

func TestCopyArrayStmt(t *testing.T) {
	b := runtime.NewBounds1(1, 3)
	in := runtime.NewStrict(b)
	in.Set(7, 2)
	p := &Program{
		Name: "copy",
		Arrays: []ArrayDecl{
			{Name: "src", B: b, Role: RoleIn},
			{Name: "dst", B: b, Role: RoleOut},
		},
		Stmts: []Stmt{&CopyArray{Dst: "dst", Src: "src"}},
	}
	out, err := mustCompile(t, p).RunResult(map[string]*runtime.Strict{"src": in})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(2) != 7 {
		t.Error("copy failed")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []*Program{
		// Unknown array.
		{Name: "e1", Stmts: []Stmt{&Assign{Array: "zzz", Subs: []IntExpr{lin(1)}, Rhs: &VConst{}}}},
		// Wrong arity.
		{Name: "e2", Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds2(1, 1, 2, 2), Role: RoleOut}},
			Stmts: []Stmt{&Assign{Array: "a", Subs: []IntExpr{lin(1)}, Rhs: &VConst{}}}},
		// Write to input.
		{Name: "e3", Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 2), Role: RoleIn}},
			Stmts: []Stmt{&Assign{Array: "a", Subs: []IntExpr{lin(1)}, Rhs: &VConst{}}}},
		// Collision check without TrackDefs.
		{Name: "e4", Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 2), Role: RoleOut}},
			Stmts: []Stmt{&Assign{Array: "a", Subs: []IntExpr{lin(1)}, Rhs: &VConst{}, CheckCollision: true}}},
		// Zero-step loop.
		{Name: "e5", Stmts: []Stmt{&Loop{Var: "i", From: 1, To: 2, Step: 0}}},
		// Unknown scalar.
		{Name: "e6", Stmts: []Stmt{&SetScalar{Name: "t", Rhs: &VConst{}}}},
		// Unknown variable in subscript.
		{Name: "e7", Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 2), Role: RoleOut}},
			Stmts: []Stmt{&Assign{Array: "a", Subs: []IntExpr{&IVar{Name: "q"}}, Rhs: &VConst{}}}},
		// Unknown builtin.
		{Name: "e8", Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 2), Role: RoleOut}},
			Stmts: []Stmt{&Assign{Array: "a", Subs: []IntExpr{lin(1)}, Rhs: &VCall{Fn: "bogus"}}}},
		// Duplicate arrays.
		{Name: "e9", Arrays: []ArrayDecl{
			{Name: "a", B: runtime.NewBounds1(1, 2), Role: RoleOut},
			{Name: "a", B: runtime.NewBounds1(1, 2), Role: RoleIn}}},
	}
	for _, p := range cases {
		if _, err := Compile(p); err == nil {
			t.Errorf("Compile(%s) succeeded, want error", p.Name)
		}
	}
}

func TestRunMissingInput(t *testing.T) {
	p := &Program{
		Name:   "needsin",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 2), Role: RoleIn}},
	}
	if _, err := mustCompile(t, p).Run(nil); err == nil {
		t.Error("missing input must error")
	}
	// Wrong bounds.
	wrong := runtime.NewStrict(runtime.NewBounds1(1, 3))
	if _, err := mustCompile(t, p).Run(map[string]*runtime.Strict{"a": wrong}); err == nil {
		t.Error("bounds mismatch must error")
	}
}

func TestDivModByZero(t *testing.T) {
	for _, op := range []byte{'/', '%'} {
		p := &Program{
			Name:   "divzero",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 1), Role: RoleOut}},
			Stmts: []Stmt{
				&Assign{Array: "a", Subs: []IntExpr{lin(1)},
					Rhs: &VFromInt{X: &IBin{Op: op, L: &IConst{Value: 1}, R: &IConst{Value: 0}}}},
			},
		}
		if _, err := mustCompile(t, p).RunResult(nil); err == nil {
			t.Errorf("%c by zero must be a runtime error", op)
		}
	}
}

func TestBuiltins(t *testing.T) {
	mk := func(rhs VExpr) *Program {
		return &Program{
			Name:   "builtin",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 1), Role: RoleOut}},
			Stmts:  []Stmt{&Assign{Array: "a", Subs: []IntExpr{lin(1)}, Rhs: rhs}},
		}
	}
	cases := []struct {
		rhs  VExpr
		want float64
	}{
		{&VCall{Fn: "abs", Args: []VExpr{&VConst{Value: -3}}}, 3},
		{&VCall{Fn: "sqrt", Args: []VExpr{&VConst{Value: 16}}}, 4},
		{&VCall{Fn: "min", Args: []VExpr{&VConst{Value: 2}, &VConst{Value: 5}}}, 2},
		{&VCall{Fn: "max", Args: []VExpr{&VConst{Value: 2}, &VConst{Value: 5}}}, 5},
		{&VCall{Fn: "pow", Args: []VExpr{&VConst{Value: 2}, &VConst{Value: 10}}}, 1024},
		{&VNeg{X: &VConst{Value: 7}}, -7},
		{&VBin{Op: '/', L: &VConst{Value: 1}, R: &VConst{Value: 4}}, 0.25},
	}
	for i, c := range cases {
		out, err := mustCompile(t, mk(c.rhs)).RunResult(nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out.At(1) != c.want {
			t.Errorf("case %d = %v, want %v", i, out.At(1), c.want)
		}
	}
}

func TestAccumulateAssign(t *testing.T) {
	plus, _ := runtime.Combiner("+")
	p := &Program{
		Name:   "hist",
		Arrays: []ArrayDecl{{Name: "h", B: runtime.NewBounds1(0, 2), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: 7, Step: 1, Body: []Stmt{
				&Assign{Array: "h",
					Subs:       []IntExpr{&IBin{Op: '%', L: &IVar{Name: "i"}, R: &IConst{Value: 3}}},
					Rhs:        &VConst{Value: 1},
					Accumulate: plus},
			}},
		},
	}
	out, err := mustCompile(t, p).RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	// i=1..7: i mod 3 = 1,2,0,1,2,0,1 → h = [2,3,2]
	if out.At(0) != 2 || out.At(1) != 3 || out.At(2) != 2 {
		t.Errorf("hist = %v %v %v", out.At(0), out.At(1), out.At(2))
	}
}

func TestDump(t *testing.T) {
	p := squaresProgram(5)
	p.Stmts = append(p.Stmts, &Fail{Msg: "unreachable"})
	d := p.Dump()
	for _, want := range []string{"program squares", "do i = 1, 5, 1", "forward", "a[i] := float((i * i))", `fail "unreachable"`} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestIntExprStrings(t *testing.T) {
	cases := []struct {
		e    IntExpr
		want string
	}{
		{lin(0, term("i", 1)), "i"},
		{lin(-1, term("i", 3)), "-1+3*i"},
		{lin(5), "5"},
		{lin(0, term("i", -1)), "-i"},
		{lin(0, term("i", 1), term("j", -2)), "i-2*j"},
		{&IBin{Op: '%', L: &IVar{Name: "i"}, R: &IConst{Value: 2}}, "(i % 2)"},
	}
	for _, c := range cases {
		if got := IntExprString(c.e); got != c.want {
			t.Errorf("IntExprString = %q, want %q", got, c.want)
		}
	}
}

func TestRoleStrings(t *testing.T) {
	if RoleIn.String() != "in" || RoleOut.String() != "out" || RoleTemp.String() != "temp" || RoleInOut.String() != "inout" {
		t.Error("Role strings wrong")
	}
}
