package loopir

import (
	"fmt"
	"math"

	"arraycomp/internal/idxprop"
	"arraycomp/internal/runtime"
)

// ExecError is a runtime failure of a compiled program (collision,
// empty read, bounds violation, explicit Fail).
type ExecError struct {
	Program string
	Msg     string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("loopir: %s: %s", e.Program, e.Msg)
}

// frame is the runtime activation record of a compiled program.
type frame struct {
	ints   []int64
	floats []float64
	arrays []*runtime.Strict
	defs   [][]bool
	// workers is the parallel worker budget for this run, resolved at
	// Run time from Exec.SetWorkers (0 means GOMAXPROCS then).
	workers int
}

type (
	intFn   func(*frame) int64
	floatFn func(*frame) float64
	boolFn  func(*frame) bool
	stmtFn  func(*frame)
)

// compiler assigns slots and translates the IR to closures.
type compiler struct {
	prog       *Program
	intSlots   map[string]int
	floatSlots map[string]int
	arraySlots map[string]int
	// fp recycles per-worker frames across this program's parallel loop
	// executions; its New is bound once slot counts are final.
	fp *framePool
	// hook is shared between the compiled BVerify closures and the Exec
	// so SetVerifyHook (called after Compile) still reaches them.
	hook *verifyHookBox
}

// verifyHookBox lets an observer record runtime verification verdicts.
// It is a box (not a plain field) because closures capture it at
// compile time while the hook itself is installed afterwards.
type verifyHookBox struct {
	fn func(claims idxprop.Claims, res idxprop.VerifyResult)
}

func (c *compiler) fail(format string, args ...any) {
	panic(&ExecError{Program: c.prog.Name, Msg: fmt.Sprintf(format, args...)})
}

// execFail raises a runtime error from compiled code.
func execFail(prog string, format string, args ...any) {
	panic(&ExecError{Program: prog, Msg: fmt.Sprintf(format, args...)})
}

// Exec is a compiled program ready to run.
type Exec struct {
	prog       *Program
	run        []stmtFn
	intSlots   map[string]int
	floatSlots map[string]int
	arraySlots map[string]int
	workers    int
	hook       *verifyHookBox
}

// SetVerifyHook installs an observer called once per runtime
// index-property verification with the claims checked and the verdict.
// Pass nil to remove it. Not safe to change concurrently with Run.
func (ex *Exec) SetVerifyHook(fn func(claims idxprop.Claims, res idxprop.VerifyResult)) {
	ex.hook.fn = fn
}

// Compile translates the program to closures. It validates names and
// arities; invalid IR is reported as an error.
func Compile(p *Program) (ex *Exec, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(*ExecError); ok {
				ex, err = nil, ee
				return
			}
			panic(r)
		}
	}()
	c := &compiler{
		prog:       p,
		intSlots:   map[string]int{},
		floatSlots: map[string]int{},
		arraySlots: map[string]int{},
		fp:         &framePool{},
		hook:       &verifyHookBox{},
	}
	for i, d := range p.Arrays {
		if _, dup := c.arraySlots[d.Name]; dup {
			c.fail("duplicate array %q", d.Name)
		}
		c.arraySlots[d.Name] = i
	}
	for i, s := range p.Scalars {
		if _, dup := c.floatSlots[s]; dup {
			c.fail("duplicate scalar %q", s)
		}
		c.floatSlots[s] = i
	}
	c.collectLoopVars(p.Stmts)
	nInts, nFloats := len(c.intSlots), len(c.floatSlots)
	c.fp.p.New = func() any {
		return &frame{ints: make([]int64, nInts), floats: make([]float64, nFloats)}
	}
	fns := c.compileStmts(p.Stmts)
	return &Exec{
		prog:       p,
		run:        fns,
		intSlots:   c.intSlots,
		floatSlots: c.floatSlots,
		arraySlots: c.arraySlots,
		hook:       c.hook,
	}, nil
}

func (c *compiler) collectLoopVars(stmts []Stmt) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			if _, ok := c.intSlots[x.Var]; !ok {
				c.intSlots[x.Var] = len(c.intSlots)
			}
			for _, ind := range x.Inds {
				if _, dup := c.intSlots[ind.Name]; dup {
					c.fail("duplicate induction register %q", ind.Name)
				}
				c.intSlots[ind.Name] = len(c.intSlots)
			}
			c.collectLoopVars(x.Body)
		case *If:
			c.collectLoopVars(x.Then)
			c.collectLoopVars(x.Else)
		}
	}
}

func (c *compiler) compileStmts(stmts []Stmt) []stmtFn {
	out := make([]stmtFn, 0, len(stmts))
	for _, s := range stmts {
		out = append(out, c.compileStmt(s))
	}
	return out
}

func runAll(fns []stmtFn, f *frame) {
	for _, fn := range fns {
		fn(f)
	}
}

func (c *compiler) compileStmt(s Stmt) stmtFn {
	switch x := s.(type) {
	case *Loop:
		slot := c.intSlots[x.Var]
		if x.Step == 0 {
			c.fail("loop over %q has zero step", x.Var)
		}
		trip := tripCount(x.From, x.To, x.Step)
		inds := make([]cInd, len(x.Inds))
		for i, ind := range x.Inds {
			inds[i] = cInd{slot: c.intSlots[ind.Name], init: c.compileInt(ind.Init), step: ind.Step}
		}
		if x.Par != nil {
			seq := c.compileSeqLoop(x, slot, inds)
			var par stmtFn
			switch x.Par.Kind {
			case ParShard:
				par = c.compileShardLoop(x, slot, x.From, x.Step, trip, inds, seq)
			case ParMonoShard:
				par = c.compileMonoShardLoop(x, slot, x.From, x.Step, trip, inds, seq)
			case ParTile, ParWavefront:
				par = c.compileTiledNest(x, slot, x.From, trip, inds, seq)
			case ParChains:
				if x.Par.Chains >= 2 {
					par = c.compileChainsLoop(x, slot, x.From, x.Step, trip, inds, seq)
				}
			}
			if par != nil {
				return par
			}
			return seq
		}
		// Legacy gate: a dependence-free loop the planner did not
		// schedule (NoOptimize, or a nest shape it does not model)
		// still shards when the work warrants it.
		if x.Parallel && parWorthwhile(trip, estimateWork(x.Body)) {
			seq := c.compileSeqLoop(x, slot, inds)
			return c.compileShardLoop(x, slot, x.From, x.Step, trip, inds, seq)
		}
		return c.compileSeqLoop(x, slot, inds)
	case *If:
		cond := c.compileBool(x.Cond)
		then := c.compileStmts(x.Then)
		els := c.compileStmts(x.Else)
		return func(f *frame) {
			if cond(f) {
				runAll(then, f)
			} else {
				runAll(els, f)
			}
		}
	case *Assign:
		return c.compileAssign(x)
	case *SetScalar:
		slot, ok := c.floatSlots[x.Name]
		if !ok {
			c.fail("assignment to undeclared scalar %q", x.Name)
		}
		rhs := c.compileFloat(x.Rhs)
		return func(f *frame) { f.floats[slot] = rhs(f) }
	case *CopyArray:
		dst := c.arraySlot(x.Dst)
		src := c.arraySlot(x.Src)
		if !c.prog.Arrays[dst].B.Equal(c.prog.Arrays[src].B) {
			c.fail("CopyArray %s <- %s: bounds differ", x.Dst, x.Src)
		}
		return func(f *frame) { copy(f.arrays[dst].Data, f.arrays[src].Data) }
	case *CheckFull:
		slot := c.arraySlot(x.Array)
		if !c.prog.Arrays[slot].TrackDefs {
			c.fail("CheckFull on %q requires TrackDefs", x.Array)
		}
		name, prog := x.Array, c.prog.Name
		b := c.prog.Arrays[slot].B
		return func(f *frame) {
			for off, ok := range f.defs[slot] {
				if !ok {
					execFail(prog, "array %s has an undefined element at %v (empty)", name, b.Unlinear(int64(off)))
				}
			}
		}
	case *Fail:
		msg, prog := x.Msg, c.prog.Name
		return func(*frame) { execFail(prog, "%s", msg) }
	case *Fill:
		slot := c.arraySlot(x.Array)
		if c.prog.Arrays[slot].Role == RoleIn {
			c.fail("fill of input array %q", x.Array)
		}
		v := x.Value
		return func(f *frame) {
			data := f.arrays[slot].Data
			for i := range data {
				data[i] = v
			}
		}
	}
	c.fail("unknown statement %T", s)
	return nil
}

// compileSeqLoop compiles a loop's plain sequential execution — the
// specialized fast path when the body shape allows it, otherwise the
// generic direction-aware loop. Parallel executors also use this as
// their single-worker fallback.
func (c *compiler) compileSeqLoop(x *Loop, slot int, inds []cInd) stmtFn {
	from, to, step := x.From, x.To, x.Step
	trip := tripCount(from, to, step)
	if fn := c.compileFastLoop(x, slot, inds); fn != nil {
		return fn
	}
	if fn := c.compileStencilLoop(x, slot, inds); fn != nil {
		return fn
	}
	body := c.compileStmts(x.Body)
	if len(inds) > 0 {
		return func(f *frame) {
			for i := range inds {
				f.ints[inds[i].slot] = inds[i].init(f)
			}
			for v, n := from, trip; n > 0; n-- {
				f.ints[slot] = v
				runAll(body, f)
				v += step
				for i := range inds {
					f.ints[inds[i].slot] += inds[i].step
				}
			}
		}
	}
	if step > 0 {
		return func(f *frame) {
			for v := from; v <= to; v += step {
				f.ints[slot] = v
				runAll(body, f)
			}
		}
	}
	return func(f *frame) {
		for v := from; v >= to; v += step {
			f.ints[slot] = v
			runAll(body, f)
		}
	}
}

func (c *compiler) arraySlot(name string) int {
	slot, ok := c.arraySlots[name]
	if !ok {
		c.fail("reference to undeclared array %q", name)
	}
	return slot
}

// compileOffset builds the linear-offset computation for an array
// access: checked (range test), strength-reduced (the optimizer's
// precomputed linear offset over induction registers), or raw
// row-major arithmetic.
func (c *compiler) compileOffset(arrName string, subs []IntExpr, off IntExpr, checked bool) (int, intFn) {
	slot := c.arraySlot(arrName)
	b := c.prog.Arrays[slot].B
	if len(subs) != b.Rank() {
		c.fail("array %q: %d subscripts for rank %d", arrName, len(subs), b.Rank())
	}
	if off != nil && !checked {
		return slot, c.compileInt(off)
	}
	subFns := make([]intFn, len(subs))
	for i, s := range subs {
		subFns[i] = c.compileInt(s)
	}
	lo := append([]int64(nil), b.Lo...)
	hi := append([]int64(nil), b.Hi...)
	ext := make([]int64, b.Rank())
	for d := range ext {
		ext[d] = b.Extent(d)
	}
	prog := c.prog.Name
	if checked {
		return slot, func(f *frame) int64 {
			var off int64
			for d, fn := range subFns {
				s := fn(f)
				if s < lo[d] || s > hi[d] {
					execFail(prog, "array %s: subscript %d out of bounds [%d..%d] in dimension %d", arrName, s, lo[d], hi[d], d)
				}
				off = off*ext[d] + (s - lo[d])
			}
			return off
		}
	}
	if len(subFns) == 1 {
		fn := subFns[0]
		l := lo[0]
		return slot, func(f *frame) int64 { return fn(f) - l }
	}
	return slot, func(f *frame) int64 {
		var off int64
		for d, fn := range subFns {
			off = off*ext[d] + (fn(f) - lo[d])
		}
		return off
	}
}

func (c *compiler) compileAssign(x *Assign) stmtFn {
	slot, offFn := c.compileOffset(x.Array, x.Subs, x.Off, x.CheckBounds)
	decl := c.prog.Arrays[slot]
	if decl.Role == RoleIn {
		c.fail("assignment to input array %q", x.Array)
	}
	if x.CheckCollision && !decl.TrackDefs {
		c.fail("CheckCollision on %q requires TrackDefs", x.Array)
	}
	rhs := c.compileFloat(x.Rhs)
	prog := c.prog.Name
	name := x.Array
	b := decl.B
	track := decl.TrackDefs && !x.NoTrack
	switch {
	case x.Accumulate != nil:
		comb := x.Accumulate
		return func(f *frame) {
			off := offFn(f)
			data := f.arrays[slot].Data
			data[off] = comb(data[off], rhs(f))
			if track {
				f.defs[slot][off] = true
			}
		}
	case x.CheckCollision:
		return func(f *frame) {
			off := offFn(f)
			if f.defs[slot][off] {
				execFail(prog, "write collision on %s at %v", name, b.Unlinear(off))
			}
			f.defs[slot][off] = true
			f.arrays[slot].Data[off] = rhs(f)
		}
	case track:
		return func(f *frame) {
			off := offFn(f)
			f.defs[slot][off] = true
			f.arrays[slot].Data[off] = rhs(f)
		}
	default:
		return func(f *frame) {
			f.arrays[slot].Data[offFn(f)] = rhs(f)
		}
	}
}

// --- expressions ---

func (c *compiler) compileInt(e IntExpr) intFn {
	switch x := e.(type) {
	case *IConst:
		v := x.Value
		return func(*frame) int64 { return v }
	case *IVar:
		slot, ok := c.intSlots[x.Name]
		if !ok {
			c.fail("unknown integer variable %q", x.Name)
		}
		return func(f *frame) int64 { return f.ints[slot] }
	case *ILin:
		switch len(x.Terms) {
		case 0:
			v := x.Const
			return func(*frame) int64 { return v }
		case 1:
			s := c.intSlotOf(x.Terms[0].Var)
			k, c0 := x.Terms[0].Coeff, x.Const
			if k == 1 {
				return func(f *frame) int64 { return c0 + f.ints[s] }
			}
			return func(f *frame) int64 { return c0 + k*f.ints[s] }
		case 2:
			s1 := c.intSlotOf(x.Terms[0].Var)
			s2 := c.intSlotOf(x.Terms[1].Var)
			k1, k2, c0 := x.Terms[0].Coeff, x.Terms[1].Coeff, x.Const
			return func(f *frame) int64 { return c0 + k1*f.ints[s1] + k2*f.ints[s2] }
		default:
			slots := make([]int, len(x.Terms))
			coeffs := make([]int64, len(x.Terms))
			for i, t := range x.Terms {
				slots[i] = c.intSlotOf(t.Var)
				coeffs[i] = t.Coeff
			}
			c0 := x.Const
			return func(f *frame) int64 {
				v := c0
				for i, s := range slots {
					v += coeffs[i] * f.ints[s]
				}
				return v
			}
		}
	case *IIdx:
		slot, offFn := c.compileOffset(x.Array, x.Subs, nil, x.CheckBounds)
		prog, name := c.prog.Name, x.Array
		if x.CheckBounds {
			return func(f *frame) int64 {
				v := f.arrays[slot].Data[offFn(f)]
				iv := int64(v)
				if float64(iv) != v {
					execFail(prog, "array %s holds non-integral subscript value %v", name, v)
				}
				return iv
			}
		}
		// Unchecked: a verified range claim already proved every element
		// integral and in range.
		return func(f *frame) int64 {
			return int64(f.arrays[slot].Data[offFn(f)])
		}
	case *IBin:
		l := c.compileInt(x.L)
		r := c.compileInt(x.R)
		prog := c.prog.Name
		switch x.Op {
		case '+':
			return func(f *frame) int64 { return l(f) + r(f) }
		case '-':
			return func(f *frame) int64 { return l(f) - r(f) }
		case '*':
			return func(f *frame) int64 { return l(f) * r(f) }
		case '/':
			return func(f *frame) int64 {
				d := r(f)
				if d == 0 {
					execFail(prog, "integer division by zero")
				}
				return l(f) / d
			}
		case '%':
			return func(f *frame) int64 {
				d := r(f)
				if d == 0 {
					execFail(prog, "integer mod by zero")
				}
				return l(f) % d
			}
		}
		c.fail("unknown integer operator %q", string(x.Op))
	}
	c.fail("unknown integer expression %T", e)
	return nil
}

func (c *compiler) intSlotOf(name string) int {
	slot, ok := c.intSlots[name]
	if !ok {
		c.fail("unknown integer variable %q", name)
	}
	return slot
}

func (c *compiler) compileFloat(e VExpr) floatFn {
	switch x := e.(type) {
	case *VConst:
		v := x.Value
		return func(*frame) float64 { return v }
	case *VFromInt:
		fn := c.compileInt(x.X)
		return func(f *frame) float64 { return float64(fn(f)) }
	case *VScalar:
		slot, ok := c.floatSlots[x.Name]
		if !ok {
			c.fail("unknown scalar %q", x.Name)
		}
		return func(f *frame) float64 { return f.floats[slot] }
	case *ARef:
		slot, offFn := c.compileOffset(x.Array, x.Subs, x.Off, x.CheckBounds)
		if x.CheckDefined {
			if !c.prog.Arrays[slot].TrackDefs {
				c.fail("CheckDefined read of %q requires TrackDefs", x.Array)
			}
			prog, name := c.prog.Name, x.Array
			b := c.prog.Arrays[slot].B
			return func(f *frame) float64 {
				off := offFn(f)
				if !f.defs[slot][off] {
					execFail(prog, "read of undefined element %s%v (empty)", name, b.Unlinear(off))
				}
				return f.arrays[slot].Data[off]
			}
		}
		return func(f *frame) float64 { return f.arrays[slot].Data[offFn(f)] }
	case *VBin:
		l := c.compileFloat(x.L)
		r := c.compileFloat(x.R)
		switch x.Op {
		case '+':
			return func(f *frame) float64 { return l(f) + r(f) }
		case '-':
			return func(f *frame) float64 { return l(f) - r(f) }
		case '*':
			return func(f *frame) float64 { return l(f) * r(f) }
		case '/':
			return func(f *frame) float64 { return l(f) / r(f) }
		}
		c.fail("unknown float operator %q", string(x.Op))
	case *VNeg:
		fn := c.compileFloat(x.X)
		return func(f *frame) float64 { return -fn(f) }
	case *VCall:
		return c.compileCall(x)
	case *VCond:
		cond := c.compileBool(x.C)
		th := c.compileFloat(x.T)
		el := c.compileFloat(x.E)
		return func(f *frame) float64 {
			if cond(f) {
				return th(f)
			}
			return el(f)
		}
	}
	c.fail("unknown value expression %T", e)
	return nil
}

func (c *compiler) compileCall(x *VCall) floatFn {
	args := make([]floatFn, len(x.Args))
	for i, a := range x.Args {
		args[i] = c.compileFloat(a)
	}
	need := func(n int) {
		if len(args) != n {
			c.fail("builtin %s expects %d arguments, got %d", x.Fn, n, len(args))
		}
	}
	switch x.Fn {
	case "abs":
		need(1)
		a := args[0]
		return func(f *frame) float64 { return math.Abs(a(f)) }
	case "sqrt":
		need(1)
		a := args[0]
		return func(f *frame) float64 { return math.Sqrt(a(f)) }
	case "exp":
		need(1)
		a := args[0]
		return func(f *frame) float64 { return math.Exp(a(f)) }
	case "log":
		need(1)
		a := args[0]
		return func(f *frame) float64 { return math.Log(a(f)) }
	case "sin":
		need(1)
		a := args[0]
		return func(f *frame) float64 { return math.Sin(a(f)) }
	case "cos":
		need(1)
		a := args[0]
		return func(f *frame) float64 { return math.Cos(a(f)) }
	case "min":
		need(2)
		a, b := args[0], args[1]
		return func(f *frame) float64 { return math.Min(a(f), b(f)) }
	case "max":
		need(2)
		a, b := args[0], args[1]
		return func(f *frame) float64 { return math.Max(a(f), b(f)) }
	case "pow":
		need(2)
		a, b := args[0], args[1]
		return func(f *frame) float64 { return math.Pow(a(f), b(f)) }
	}
	c.fail("unknown builtin %q", x.Fn)
	return nil
}

func (c *compiler) compileBool(e BExpr) boolFn {
	switch x := e.(type) {
	case *BConst:
		v := x.Value
		return func(*frame) bool { return v }
	case *BCmpInt:
		l := c.compileInt(x.L)
		r := c.compileInt(x.R)
		switch x.Op {
		case "==":
			return func(f *frame) bool { return l(f) == r(f) }
		case "/=":
			return func(f *frame) bool { return l(f) != r(f) }
		case "<":
			return func(f *frame) bool { return l(f) < r(f) }
		case "<=":
			return func(f *frame) bool { return l(f) <= r(f) }
		case ">":
			return func(f *frame) bool { return l(f) > r(f) }
		case ">=":
			return func(f *frame) bool { return l(f) >= r(f) }
		}
		c.fail("unknown comparison %q", x.Op)
	case *BCmpFloat:
		l := c.compileFloat(x.L)
		r := c.compileFloat(x.R)
		switch x.Op {
		case "==":
			return func(f *frame) bool { return l(f) == r(f) }
		case "/=":
			return func(f *frame) bool { return l(f) != r(f) }
		case "<":
			return func(f *frame) bool { return l(f) < r(f) }
		case "<=":
			return func(f *frame) bool { return l(f) <= r(f) }
		case ">":
			return func(f *frame) bool { return l(f) > r(f) }
		case ">=":
			return func(f *frame) bool { return l(f) >= r(f) }
		}
		c.fail("unknown comparison %q", x.Op)
	case *BAnd:
		l := c.compileBool(x.L)
		r := c.compileBool(x.R)
		return func(f *frame) bool { return l(f) && r(f) }
	case *BOr:
		l := c.compileBool(x.L)
		r := c.compileBool(x.R)
		return func(f *frame) bool { return l(f) || r(f) }
	case *BNot:
		fn := c.compileBool(x.X)
		return func(f *frame) bool { return !fn(f) }
	case *BVerify:
		slot := c.arraySlot(x.Array)
		claims := x.Claims
		box := c.hook
		return func(f *frame) bool {
			r := idxprop.Verify(f.arrays[slot].Data, claims)
			if box.fn != nil {
				box.fn(claims, r)
			}
			return r.OK
		}
	}
	c.fail("unknown boolean expression %T", e)
	return nil
}
