package loopir

import (
	"strings"
	"sync"
	"testing"

	"arraycomp/internal/runtime"
)

// Tests for the worker-pool executors. GOMAXPROCS may be 1 in CI, so
// every test forces a multi-worker cohort with SetWorkers — the
// goroutine interleaving (and the race detector) still exercises the
// synchronization even on one CPU.

// stencil2D builds an n×n in-place nest a[i,j] = f(neighbours) with the
// given subscript offsets read on the rhs. Offsets are (di,dj) pairs
// relative to (i,j).
func stencil2D(n int64, doacross bool, reads [][2]int64) *Program {
	rhs := VExpr(&VConst{Value: 1})
	for _, r := range reads {
		ref := &ARef{Array: "a", Subs: []IntExpr{
			lin(r[0], term("i", 1)), lin(r[1], term("j", 1)),
		}}
		rhs = &VBin{Op: '+', L: rhs, R: ref}
	}
	return &Program{
		Name:   "stencil",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleInOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 2, To: n - 1, Step: 1, Doacross: doacross, Body: []Stmt{
				&Loop{Var: "j", From: 2, To: n - 1, Step: 1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
						Rhs:   &VBin{Op: '*', L: &VConst{Value: 0.5}, R: rhs},
					},
				}},
			}},
		},
	}
}

func seededMatrix(n int64) *runtime.Strict {
	m := runtime.NewStrict(runtime.NewBounds2(1, 1, n, n))
	for i := range m.Data {
		m.Data[i] = float64(i%17) * 0.25
	}
	return m
}

// runWorkers compiles (optionally optimizing) and runs with a fixed
// worker count.
func runWorkers(t *testing.T, p *Program, optimize bool, workers int, inputs map[string]*runtime.Strict) *runtime.Strict {
	t.Helper()
	if optimize {
		Optimize(p)
	}
	ex := mustCompile(t, p)
	ex.SetWorkers(workers)
	out, err := ex.RunResult(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWavefrontScheduleMatchesSequential(t *testing.T) {
	n := int64(128)
	reads := [][2]int64{{-1, 0}, {0, -1}, {1, 0}, {0, 1}} // SOR shape
	ref := runWorkers(t, stencil2D(n, false, reads), false, 1,
		map[string]*runtime.Strict{"a": seededMatrix(n)})
	p := stencil2D(n, true, reads)
	Optimize(p)
	if d := p.Dump(); !strings.Contains(d, "[wavefront") {
		t.Fatalf("planner did not pick a wavefront schedule:\n%s", d)
	}
	ex := mustCompile(t, p)
	for _, w := range []int{2, 3, 8} {
		ex.SetWorkers(w)
		got, err := ex.RunResult(map[string]*runtime.Strict{"a": seededMatrix(n)})
		if err != nil {
			t.Fatal(err)
		}
		if !ref.EqualWithin(got, 0) {
			t.Fatalf("wavefront result differs from sequential at workers=%d", w)
		}
	}
}

func TestTileScheduleMatchesSequential(t *testing.T) {
	// Reads come from a separate input: the nest is dependence-free and
	// should tile without synchronization.
	n := int64(128)
	mk := func(parallel bool) *Program {
		return &Program{
			Name: "jac",
			Arrays: []ArrayDecl{
				{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleOut},
				{Name: "b", B: runtime.NewBounds2(1, 1, n, n), Role: RoleIn},
			},
			Stmts: []Stmt{
				&Loop{Var: "i", From: 2, To: n - 1, Step: 1, Parallel: parallel, Body: []Stmt{
					&Loop{Var: "j", From: 2, To: n - 1, Step: 1, Body: []Stmt{
						&Assign{
							Array: "a",
							Subs:  []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
							Rhs: &VBin{Op: '+',
								L: &ARef{Array: "b", Subs: []IntExpr{lin(-1, term("i", 1)), lin(0, term("j", 1))}},
								R: &ARef{Array: "b", Subs: []IntExpr{lin(0, term("i", 1)), lin(1, term("j", 1))}},
							},
						},
					}},
				}},
			},
		}
	}
	in := map[string]*runtime.Strict{"b": seededMatrix(n)}
	ref := runWorkers(t, mk(false), false, 1, in)
	p := mk(true)
	Optimize(p)
	if d := p.Dump(); !strings.Contains(d, "[tile") {
		t.Fatalf("planner did not pick a tile schedule:\n%s", d)
	}
	got := runWorkers(t, p, false, 4, in)
	if !ref.EqualWithin(got, 0) {
		t.Fatal("tiled result differs from sequential")
	}
}

func TestRowBandScheduleMatchesSequential(t *testing.T) {
	// Only an inner-carried dependence (a[i,j-1]): rows are independent,
	// the planner should pick full-width row bands (TileJ = nj).
	n := int64(128)
	reads := [][2]int64{{0, -1}}
	ref := runWorkers(t, stencil2D(n, false, reads), false, 1,
		map[string]*runtime.Strict{"a": seededMatrix(n)})
	p := stencil2D(n, true, reads)
	Optimize(p)
	outer, ok := p.Stmts[0].(*Loop)
	if !ok || outer.Par == nil || outer.Par.Kind != ParTile || outer.Par.TileJ != n-2 {
		t.Fatalf("want row-band tile schedule, got:\n%s", p.Dump())
	}
	got := runWorkers(t, p, false, 4, map[string]*runtime.Strict{"a": seededMatrix(n)})
	if !ref.EqualWithin(got, 0) {
		t.Fatal("row-band result differs from sequential")
	}
}

func TestChainsScheduleMatchesSequential(t *testing.T) {
	n := int64(8192)
	mk := func(doacross bool) *Program {
		return &Program{
			Name:   "rec3",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleInOut}},
			Stmts: []Stmt{
				&Loop{Var: "i", From: 4, To: n, Step: 1, Doacross: doacross, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1))},
						Rhs: &VBin{Op: '+',
							L: &ARef{Array: "a", Subs: []IntExpr{lin(-3, term("i", 1))}},
							R: &VConst{Value: 1},
						},
					},
				}},
			},
		}
	}
	seed := func() *runtime.Strict {
		v := runtime.NewStrict(runtime.NewBounds1(1, n))
		for i := range v.Data {
			v.Data[i] = float64(i % 5)
		}
		return v
	}
	ref := runWorkers(t, mk(false), false, 1, map[string]*runtime.Strict{"a": seed()})
	p := mk(true)
	Optimize(p)
	outer, ok := p.Stmts[0].(*Loop)
	if !ok || outer.Par == nil || outer.Par.Kind != ParChains || outer.Par.Chains != 3 {
		t.Fatalf("want chains(3) schedule, got:\n%s", p.Dump())
	}
	got := runWorkers(t, p, false, 3, map[string]*runtime.Strict{"a": seed()})
	if !ref.EqualWithin(got, 0) {
		t.Fatal("chains result differs from sequential")
	}
}

func TestUnitDistanceRecurrenceStaysSequential(t *testing.T) {
	n := int64(8192)
	p := &Program{
		Name:   "rec1",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleInOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 2, To: n, Step: 1, Doacross: true, Body: []Stmt{
				&Assign{
					Array: "a",
					Subs:  []IntExpr{lin(0, term("i", 1))},
					Rhs: &VBin{Op: '+',
						L: &ARef{Array: "a", Subs: []IntExpr{lin(-1, term("i", 1))}},
						R: &VConst{Value: 1},
					},
				},
			}},
		},
	}
	st := Optimize(p)
	if outer := p.Stmts[0].(*Loop); outer.Par != nil || st.ParSchedules != 0 {
		t.Fatalf("unit-distance recurrence must stay sequential:\n%s", p.Dump())
	}
}

func TestNonUniformDependenceStaysSequential(t *testing.T) {
	// a[i,j] reads a[j,i]: conflicts exist at varying distances, no
	// uniform vector, so every tiled schedule must be refused.
	n := int64(128)
	p := &Program{
		Name:   "transp",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleInOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: n, Step: 1, Doacross: true, Body: []Stmt{
				&Loop{Var: "j", From: 1, To: n, Step: 1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
						Rhs:   &ARef{Array: "a", Subs: []IntExpr{lin(0, term("j", 1)), lin(0, term("i", 1))}},
					},
				}},
			}},
		},
	}
	Optimize(p)
	if outer := p.Stmts[0].(*Loop); outer.Par != nil {
		t.Fatalf("non-uniform dependence wrongly scheduled: %s", outer.Par)
	}
}

// TestWavefrontPrefixRows exercises the per-row prefix statements of a
// tiled nest (the fused border-column case): the prefix must run once
// per row, before the row's first tile column.
func TestWavefrontPrefixRows(t *testing.T) {
	n := int64(128)
	mk := func(doacross bool) *Program {
		return &Program{
			Name:   "wf",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleInOut}},
			Stmts: []Stmt{
				&Loop{Var: "i", From: 2, To: n, Step: 1, Doacross: doacross, Body: []Stmt{
					&Assign{ // border column 1, read by the first inner iteration
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1)), lin(1)},
						Rhs:   &VFromInt{X: &IVar{Name: "i"}},
					},
					&Loop{Var: "j", From: 2, To: n, Step: 1, Body: []Stmt{
						&Assign{
							Array: "a",
							Subs:  []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
							Rhs: &VBin{Op: '*',
								L: &VConst{Value: 0.25},
								R: &VBin{Op: '+',
									L: &ARef{Array: "a", Subs: []IntExpr{lin(-1, term("i", 1)), lin(0, term("j", 1))}},
									R: &ARef{Array: "a", Subs: []IntExpr{lin(0, term("i", 1)), lin(-1, term("j", 1))}},
								},
							},
						},
					}},
				}},
			},
		}
	}
	ref := runWorkers(t, mk(false), false, 1, map[string]*runtime.Strict{"a": seededMatrix(n)})
	p := mk(true)
	Optimize(p)
	if d := p.Dump(); !strings.Contains(d, "[wavefront") {
		t.Fatalf("planner did not pick a wavefront schedule:\n%s", d)
	}
	got := runWorkers(t, p, false, 5, map[string]*runtime.Strict{"a": seededMatrix(n)})
	if !ref.EqualWithin(got, 0) {
		t.Fatal("wavefront-with-prefix result differs from sequential")
	}
}

// TestShardDeterministicError: several workers fail at different
// iterations — the reported error must be the sequentially-first one.
func TestShardDeterministicError(t *testing.T) {
	n := int64(8192)
	bad := int64(3000) // first failing iteration: subscript exceeds n
	p := &Program{
		Name:   "perr",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: n, Step: 1, Parallel: true, Body: []Stmt{
				// i < bad: writes a[i]; i >= bad: writes a[i + n] — out of
				// bounds, so every iteration from bad on fails.
				&Assign{
					Array: "a",
					Subs: []IntExpr{&IBin{Op: '+',
						L: &IVar{Name: "i"},
						R: &IBin{Op: '*',
							L: &IConst{Value: n},
							R: &IBin{Op: '/', L: &IVar{Name: "i"}, R: &IConst{Value: bad}},
						},
					}},
					Rhs:         &VConst{Value: 1},
					CheckBounds: true,
				},
			}},
		},
	}
	ex := mustCompile(t, p)
	seqErr := func() string {
		ex.SetWorkers(1)
		_, err := ex.RunResult(nil)
		if err == nil {
			t.Fatal("sequential run did not fail")
		}
		return err.Error()
	}()
	for _, w := range []int{2, 4, 7} {
		ex.SetWorkers(w)
		_, err := ex.RunResult(nil)
		if err == nil {
			t.Fatalf("workers=%d: no error", w)
		}
		if err.Error() != seqErr {
			t.Fatalf("workers=%d: error %q, sequential %q", w, err.Error(), seqErr)
		}
	}
}

// TestTileDeterministicError: the failing region spans many tiles; the
// row-major-first failure must win regardless of tile assignment.
func TestTileDeterministicError(t *testing.T) {
	n := int64(128)
	bad := int64(77)
	p := &Program{
		Name: "terr",
		Arrays: []ArrayDecl{
			{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleOut},
			{Name: "b", B: runtime.NewBounds2(1, 1, n, n), Role: RoleIn},
		},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: n, Step: 1, Parallel: true, Body: []Stmt{
				&Loop{Var: "j", From: 1, To: n, Step: 1, Body: []Stmt{
					// Fails for every (i,j) with i >= bad: column subscript
					// j + n*(i/bad) leaves the bounds.
					&Assign{
						Array: "a",
						Subs: []IntExpr{
							lin(0, term("i", 1)),
							&IBin{Op: '+',
								L: &IVar{Name: "j"},
								R: &IBin{Op: '*',
									L: &IConst{Value: n},
									R: &IBin{Op: '/', L: &IVar{Name: "i"}, R: &IConst{Value: bad}},
								},
							},
						},
						Rhs:         &ARef{Array: "b", Subs: []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))}},
						CheckBounds: true,
					},
				}},
			}},
		},
	}
	Optimize(p)
	// The checked assign disqualifies planning? No: CheckBounds accesses
	// have affine subs nil (IBin), so the planner rejects — force a tile
	// schedule by hand to exercise the executor's error path.
	outer := p.Stmts[0].(*Loop)
	outer.Par = &ParSchedule{Kind: ParTile, TileI: 16, TileJ: 16}
	ex := mustCompile(t, p)
	in := map[string]*runtime.Strict{"b": seededMatrix(n)}
	ex.SetWorkers(1)
	_, err := ex.RunResult(in)
	if err == nil {
		t.Fatal("sequential run did not fail")
	}
	seqErr := err.Error()
	for _, w := range []int{2, 5} {
		ex.SetWorkers(w)
		_, err := ex.RunResult(in)
		if err == nil || err.Error() != seqErr {
			t.Fatalf("workers=%d: error %v, sequential %q", w, err, seqErr)
		}
	}
}

func TestSetWorkersBetweenRuns(t *testing.T) {
	n := int64(128)
	reads := [][2]int64{{-1, 0}, {0, -1}}
	p := stencil2D(n, true, reads)
	Optimize(p)
	ex := mustCompile(t, p)
	var ref *runtime.Strict
	for run, w := range []int{1, 6, 2, 0} {
		ex.SetWorkers(w)
		got, err := ex.RunResult(map[string]*runtime.Strict{"a": seededMatrix(n)})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			ref = got
		} else if !ref.EqualWithin(got, 0) {
			t.Fatalf("run with workers=%d differs", w)
		}
	}
}

func TestRunParallelPoolReuse(t *testing.T) {
	// Workers park back on the idle stack and are reused; repeated
	// cohorts must not leak or deadlock.
	for round := 0; round < 50; round++ {
		var mu sync.Mutex
		seen := map[int]bool{}
		runParallel(8, func(w int) {
			mu.Lock()
			seen[w] = true
			mu.Unlock()
		})
		if len(seen) != 8 {
			t.Fatalf("round %d: %d workers ran, want 8", round, len(seen))
		}
	}
	workerPool.mu.Lock()
	idle := len(workerPool.idle)
	workerPool.mu.Unlock()
	if idle == 0 || idle > maxIdleWorkers {
		t.Fatalf("idle pool size %d after reuse rounds", idle)
	}
}

func TestBarrierGenerations(t *testing.T) {
	const cohort = 6
	const phases = 25
	bar := newBarrier(cohort)
	counts := make([]int64, cohort)
	runParallel(cohort, func(w int) {
		for p := 0; p < phases; p++ {
			counts[w]++
			bar.await()
		}
	})
	for w, c := range counts {
		if c != phases {
			t.Fatalf("worker %d completed %d phases, want %d", w, c, phases)
		}
	}
}
