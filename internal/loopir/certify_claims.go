package loopir

import (
	"fmt"

	"arraycomp/internal/certify"
	"arraycomp/internal/idxprop"
)

// Certification of claim-conditional plans. A dual lowering relaxes
// runtime checks — unchecked index-array loads (IIdx), untracked
// stores (Assign.NoTrack), mono-shard schedules — on the strength of
// index-array property claims, discharged either statically (the
// claims passed in) or by the BVerify guard dominating the relaxed
// branch. CertifyClaims re-walks the program and demands that every
// relaxation is actually covered by a dominating claim that implies
// it; a forged plan whose guard omits the needed property (or whose
// fast branch leaked into unguarded code) is falsified. The *value*
// properties are what this auditor covers; the in-bounds facts about
// the index array's own (affine) subscripts are static affine proofs
// audited at the analysis layer.
//
// Soundness division of labor: this auditor proves "the plan only
// assumes what some claim states"; the runtime verifier (or, for
// static claims, the core layer's materialize-and-verify replay)
// proves "the claims hold for the actual data".

// CertifyClaims audits every claim-conditional relaxation in p,
// treating the given statically discharged claims as proven
// everywhere and BVerify-guarded claims as proven inside the guarded
// branch only.
func CertifyClaims(p *Program, static idxprop.Claims) *certify.Report {
	rep := certify.NewReport()
	a := &claimAuditor{prog: p, rep: rep}
	a.stmts(p.Stmts, static)
	if a.sites > 0 && !a.bad {
		rep.Record(certify.Certificate{
			Layer:      "claims",
			Claim:      fmt.Sprintf("%d claim-conditional relaxations covered by dominating claims", a.sites),
			Status:     certify.Certified,
			Exhaustive: true,
		})
	}
	return rep
}

type claimAuditor struct {
	prog  *Program
	rep   *certify.Report
	sites int
	bad   bool
}

func (a *claimAuditor) falsify(format string, args ...any) {
	a.bad = true
	a.rep.Record(certify.Certificate{
		Layer:  "claims",
		Claim:  "claim-conditional relaxations covered by dominating claims",
		Status: certify.Falsified,
		Detail: fmt.Sprintf(format, args...),
	})
}

func hasClaim(active idxprop.Claims, arr string, kind idxprop.Kind) bool {
	for _, c := range active {
		if c.Array == arr && c.Kind == kind {
			return true
		}
	}
	return false
}

// rangeOf intersects every active range claim on arr.
func rangeOf(active idxprop.Claims, arr string) (lo, hi int64, ok bool) {
	for _, c := range active {
		if c.Array != arr || c.Kind != idxprop.KRange {
			continue
		}
		if !ok {
			lo, hi, ok = c.Lo, c.Hi, true
		} else {
			lo, hi = max64i(lo, c.Lo), min64i(hi, c.Hi)
		}
	}
	return lo, hi, ok
}

// guardClaims collects the claims of every BVerify conjunct of an If
// condition: inside the Then branch they are known to hold (other
// conjuncts narrow the branch further but never weaken a verifier's
// verdict).
func guardClaims(b BExpr) idxprop.Claims {
	switch x := b.(type) {
	case *BVerify:
		return x.Claims
	case *BAnd:
		return append(append(idxprop.Claims(nil), guardClaims(x.L)...), guardClaims(x.R)...)
	}
	return nil
}

func (a *claimAuditor) stmts(list []Stmt, active idxprop.Claims) {
	for _, s := range list {
		switch x := s.(type) {
		case *Loop:
			if x.Par != nil && x.Par.Kind == ParMonoShard {
				a.sites++
				idx, isIdx := x.Par.AlignOn.(*IIdx)
				switch {
				case !isIdx:
					a.falsify("mono-shard loop %s aligns on a non-index expression", x.Var)
				case !hasClaim(active, idx.Array, idxprop.KMonoNonDec):
					a.falsify("mono-shard loop %s aligned on %s without a dominating monotonicity claim", x.Var, idx.Array)
				case !hasClaim(active, idx.Array, idxprop.KRange):
					a.falsify("mono-shard loop %s aligned on %s without a dominating range claim", x.Var, idx.Array)
				}
				if isIdx {
					a.intExpr(idx, active, nil, 0)
				}
			}
			for _, ind := range x.Inds {
				a.intExpr(ind.Init, active, nil, 0)
			}
			a.stmts(x.Body, active)
		case *If:
			a.bexpr(x.Cond, active)
			a.stmts(x.Then, append(append(idxprop.Claims(nil), active...), guardClaims(x.Cond)...))
			a.stmts(x.Else, active)
		case *Assign:
			decl := a.prog.Decl(x.Array)
			for d, sub := range x.Subs {
				dest := decl
				if x.CheckBounds {
					dest = nil // the runtime check covers any claim gap
				}
				a.intExpr(sub, active, dest, d)
			}
			if x.NoTrack {
				a.sites++
				if !injectiveStore(x.Subs, active) {
					a.falsify("untracked store to %s has no dominating injectivity claim on its index array", x.Array)
				}
			}
			a.vexpr(x.Rhs, active)
		case *SetScalar:
			a.vexpr(x.Rhs, active)
		}
	}
}

// injectiveStore reports whether some index array loaded in the store
// subscripts carries an active injectivity claim (distinct iterations
// then hit distinct elements, so the definedness bitmap is redundant).
func injectiveStore(subs []IntExpr, active idxprop.Claims) bool {
	found := false
	var scan func(e IntExpr)
	scan = func(e IntExpr) {
		switch x := e.(type) {
		case *IIdx:
			if hasClaim(active, x.Array, idxprop.KInjective) {
				found = true
			}
		case *IBin:
			scan(x.L)
			scan(x.R)
		}
	}
	for _, s := range subs {
		scan(s)
	}
	return found
}

// intExpr audits an integer expression. dest/dim are set when the
// expression is a subscript of dest's dimension dim whose bounds check
// was elided — the value claim must then cover the destination range.
func (a *claimAuditor) intExpr(e IntExpr, active idxprop.Claims, dest *ArrayDecl, dim int) {
	switch x := e.(type) {
	case *IIdx:
		decl := a.prog.Decl(x.Array)
		if decl == nil {
			a.falsify("index load references undeclared array %s", x.Array)
			return
		}
		if !x.CheckBounds {
			a.sites++
			lo, hi, ok := rangeOf(active, x.Array)
			switch {
			case !ok:
				a.falsify("unchecked load of index array %s has no dominating range claim", x.Array)
			case dest != nil && (lo < dest.B.Lo[dim] || hi > dest.B.Hi[dim]):
				a.falsify("range claim %d..%d on %s does not cover %s dimension %d (%d..%d)",
					lo, hi, x.Array, dest.Name, dim, dest.B.Lo[dim], dest.B.Hi[dim])
			}
		}
		for d, sub := range x.Subs {
			inner := decl
			if x.CheckBounds {
				inner = nil
			}
			a.intExpr(sub, active, inner, d)
		}
	case *IBin:
		a.intExpr(x.L, active, nil, 0)
		a.intExpr(x.R, active, nil, 0)
	}
}

func (a *claimAuditor) vexpr(e VExpr, active idxprop.Claims) {
	switch x := e.(type) {
	case *ARef:
		decl := a.prog.Decl(x.Array)
		for d, sub := range x.Subs {
			dest := decl
			if x.CheckBounds {
				dest = nil
			}
			a.intExpr(sub, active, dest, d)
		}
	case *VFromInt:
		a.intExpr(x.X, active, nil, 0)
	case *VBin:
		a.vexpr(x.L, active)
		a.vexpr(x.R, active)
	case *VNeg:
		a.vexpr(x.X, active)
	case *VCall:
		for _, arg := range x.Args {
			a.vexpr(arg, active)
		}
	case *VCond:
		a.bexpr(x.C, active)
		a.vexpr(x.T, active)
		a.vexpr(x.E, active)
	}
}

func (a *claimAuditor) bexpr(e BExpr, active idxprop.Claims) {
	switch x := e.(type) {
	case *BCmpInt:
		a.intExpr(x.L, active, nil, 0)
		a.intExpr(x.R, active, nil, 0)
	case *BCmpFloat:
		a.vexpr(x.L, active)
		a.vexpr(x.R, active)
	case *BAnd:
		a.bexpr(x.L, active)
		a.bexpr(x.R, active)
	case *BOr:
		a.bexpr(x.L, active)
		a.bexpr(x.R, active)
	case *BNot:
		a.bexpr(x.X, active)
	case *BVerify:
		decl := a.prog.Decl(x.Array)
		if decl == nil || decl.B.Rank() != 1 {
			a.falsify("runtime verifier targets %s, which is not a declared rank-1 array", x.Array)
		}
	}
}

func max64i(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64i(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
