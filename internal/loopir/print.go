package loopir

import (
	"fmt"
	"strings"
)

// Dump renders the program as indented pseudo-code, stable across runs,
// for diagnostics and golden tests.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, d := range p.Arrays {
		fmt.Fprintf(&b, "  array %s %s %s", d.Name, d.B, d.Role)
		if d.TrackDefs {
			b.WriteString(" trackdefs")
		}
		b.WriteByte('\n')
	}
	for _, s := range p.Scalars {
		fmt.Fprintf(&b, "  scalar %s\n", s)
	}
	writeStmts(&b, p.Stmts, 1)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func writeStmts(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		writeStmt(b, s, depth)
	}
}

func writeStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch x := s.(type) {
	case *Loop:
		dir := "forward"
		if x.Step < 0 {
			dir = "backward"
		}
		if x.Parallel {
			dir += ", parallel"
		} else if x.Doacross {
			dir += ", doacross"
		}
		if x.Par != nil {
			dir += " [" + x.Par.String() + "]"
		}
		if x.Sten != nil && !x.Sten.Inner {
			dir += " [" + x.Sten.String() + "]"
		}
		fmt.Fprintf(b, "do %s = %d, %d, %d  -- %s\n", x.Var, x.From, x.To, x.Step, dir)
		for _, ind := range x.Inds {
			indent(b, depth+1)
			fmt.Fprintf(b, "ind %s = %s step %d\n", ind.Name, IntExprString(ind.Init), ind.Step)
		}
		writeStmts(b, x.Body, depth+1)
	case *If:
		fmt.Fprintf(b, "if %s then\n", BExprString(x.Cond))
		writeStmts(b, x.Then, depth+1)
		if len(x.Else) > 0 {
			indent(b, depth)
			b.WriteString("else\n")
			writeStmts(b, x.Else, depth+1)
		}
	case *Assign:
		fmt.Fprintf(b, "%s[%s]%s %s %s", x.Array, subsString(x.Subs), offString(x.Off), assignOp(x), VExprString(x.Rhs))
		var notes []string
		if x.CheckBounds {
			notes = append(notes, "bounds-checked")
		}
		if x.CheckCollision {
			notes = append(notes, "collision-checked")
		}
		if len(notes) > 0 {
			fmt.Fprintf(b, "  -- %s", strings.Join(notes, ", "))
		}
		b.WriteByte('\n')
	case *SetScalar:
		fmt.Fprintf(b, "%s := %s\n", x.Name, VExprString(x.Rhs))
	case *CopyArray:
		fmt.Fprintf(b, "copy %s <- %s\n", x.Dst, x.Src)
	case *CheckFull:
		fmt.Fprintf(b, "check-full %s\n", x.Array)
	case *Fail:
		fmt.Fprintf(b, "fail %q\n", x.Msg)
	case *Fill:
		fmt.Fprintf(b, "fill %s := %v\n", x.Array, x.Value)
	default:
		fmt.Fprintf(b, "?stmt %T\n", s)
	}
}

func assignOp(x *Assign) string {
	if x.Accumulate != nil {
		return "accum:="
	}
	return ":="
}

// offString renders a strength-reduced offset annotation ("@{o$1+2}"),
// or nothing when the access still uses plain subscript arithmetic.
func offString(off IntExpr) string {
	if off == nil {
		return ""
	}
	return fmt.Sprintf("@{%s}", IntExprString(off))
}

func subsString(subs []IntExpr) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		parts[i] = IntExprString(s)
	}
	return strings.Join(parts, ",")
}

// IntExprString renders an integer expression.
func IntExprString(e IntExpr) string {
	switch x := e.(type) {
	case *IConst:
		return fmt.Sprint(x.Value)
	case *IVar:
		return x.Name
	case *ILin:
		var b strings.Builder
		wrote := false
		if x.Const != 0 || len(x.Terms) == 0 {
			fmt.Fprintf(&b, "%d", x.Const)
			wrote = true
		}
		for _, t := range x.Terms {
			c := t.Coeff
			if wrote {
				if c < 0 {
					b.WriteString("-")
					c = -c
				} else {
					b.WriteString("+")
				}
			} else if c < 0 {
				b.WriteString("-")
				c = -c
			}
			if c != 1 {
				fmt.Fprintf(&b, "%d*", c)
			}
			b.WriteString(t.Var)
			wrote = true
		}
		return b.String()
	case *IIdx:
		s := fmt.Sprintf("%s[%s]", x.Array, subsString(x.Subs))
		if x.CheckBounds {
			s += "!"
		}
		return s
	case *IBin:
		return fmt.Sprintf("(%s %c %s)", IntExprString(x.L), x.Op, IntExprString(x.R))
	}
	return fmt.Sprintf("?int %T", e)
}

// VExprString renders a float expression.
func VExprString(e VExpr) string {
	switch x := e.(type) {
	case *VConst:
		return fmt.Sprint(x.Value)
	case *VFromInt:
		return fmt.Sprintf("float(%s)", IntExprString(x.X))
	case *VScalar:
		return x.Name
	case *ARef:
		s := fmt.Sprintf("%s[%s]%s", x.Array, subsString(x.Subs), offString(x.Off))
		if x.CheckDefined {
			s += "?"
		}
		return s
	case *VBin:
		return fmt.Sprintf("(%s %c %s)", VExprString(x.L), x.Op, VExprString(x.R))
	case *VNeg:
		return fmt.Sprintf("(-%s)", VExprString(x.X))
	case *VCall:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = VExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Fn, strings.Join(parts, ", "))
	case *VCond:
		return fmt.Sprintf("(if %s then %s else %s)", BExprString(x.C), VExprString(x.T), VExprString(x.E))
	}
	return fmt.Sprintf("?val %T", e)
}

// BExprString renders a boolean expression.
func BExprString(e BExpr) string {
	switch x := e.(type) {
	case *BConst:
		return fmt.Sprint(x.Value)
	case *BCmpInt:
		return fmt.Sprintf("%s %s %s", IntExprString(x.L), x.Op, IntExprString(x.R))
	case *BCmpFloat:
		return fmt.Sprintf("%s %s %s", VExprString(x.L), x.Op, VExprString(x.R))
	case *BAnd:
		return fmt.Sprintf("(%s && %s)", BExprString(x.L), BExprString(x.R))
	case *BOr:
		return fmt.Sprintf("(%s || %s)", BExprString(x.L), BExprString(x.R))
	case *BNot:
		return fmt.Sprintf("not (%s)", BExprString(x.X))
	case *BVerify:
		return fmt.Sprintf("verify %s %s", x.Array, x.Claims)
	}
	return fmt.Sprintf("?bool %T", e)
}
