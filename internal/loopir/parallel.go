package loopir

import (
	"runtime"
	"sync"
)

// Parallel execution of dependence-free loops (the paper's section 10
// extension). The scheduler guarantees the loop carries no dependences
// and the code generator guarantees the body's only shared state is
// disjoint array elements, so instances may run concurrently; each
// worker gets its own frame (loop variables and scalars are
// thread-local, array storage and definedness bitmaps are shared).

// Sharding thresholds: a loop is worth parallelizing when it has
// enough instances to split across workers AND enough total work (trip
// × statically-estimated body cost) to amortize goroutine startup.
const (
	minParallelTrip = 64
	minParallelWork = 1 << 15
)

// estimateWork statically estimates a statement list's cost in
// abstract operations; nested loops multiply by their trip counts.
func estimateWork(stmts []Stmt) int64 {
	var total int64
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			trip := tripCount(x.From, x.To, x.Step)
			total += 1 + trip*estimateWork(x.Body)
		case *If:
			thenW := estimateWork(x.Then)
			elseW := estimateWork(x.Else)
			if elseW > thenW {
				thenW = elseW
			}
			total += 1 + thenW
		default:
			total++
		}
	}
	return total
}

func tripCount(from, to, step int64) int64 {
	if step > 0 {
		if to < from {
			return 0
		}
		return (to-from)/step + 1
	}
	if to > from {
		return 0
	}
	return (from-to)/(-step) + 1
}

// cloneFrame gives a worker its own register file over the shared
// arrays.
func cloneFrame(f *frame) *frame {
	out := &frame{
		ints:   make([]int64, len(f.ints)),
		floats: make([]float64, len(f.floats)),
		arrays: f.arrays,
		defs:   f.defs,
	}
	copy(out.ints, f.ints)
	copy(out.floats, f.floats)
	return out
}

// compileParallelLoop shards [0..trip) across workers. Runtime errors
// (panics carrying *ExecError) inside workers are captured and
// re-raised on the caller's goroutine after all workers finish.
func compileParallelLoop(slot int, from, step, trip int64, body []stmtFn) stmtFn {
	workers := int64(runtime.GOMAXPROCS(0))
	if workers < 1 {
		workers = 1
	}
	if workers > trip {
		workers = trip
	}
	return func(f *frame) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr *ExecError
		chunk := (trip + workers - 1) / workers
		for w := int64(0); w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > trip {
				hi = trip
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int64) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if ee, ok := r.(*ExecError); ok {
							mu.Lock()
							if firstErr == nil {
								firstErr = ee
							}
							mu.Unlock()
							return
						}
						panic(r)
					}
				}()
				wf := cloneFrame(f)
				for t := lo; t < hi; t++ {
					wf.ints[slot] = from + t*step
					runAll(body, wf)
				}
			}(lo, hi)
		}
		wg.Wait()
		if firstErr != nil {
			panic(firstErr)
		}
	}
}
