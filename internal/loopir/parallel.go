package loopir

// Parallel execution of scheduled loops (the paper's section 10
// extension, grown into a doacross engine). The scheduler guarantees
// which dependences a loop carries; the optimizer's planning pass (see
// plan.go) verifies the concrete distance vectors and attaches a
// ParSchedule; this file compiles those schedules to closures over the
// persistent worker pool (see pool.go). Each worker gets its own
// register frame from the Exec's frame pool — loop variables and
// scalars are thread-local, array storage and definedness bitmaps are
// shared.
//
// Every parallel executor reads the worker count from the frame at run
// time (Exec.SetWorkers / GOMAXPROCS), falls back to the sequential
// closure when only one worker is available, and reports the runtime
// error of the lowest iteration in the loop's sequential order, so a
// parallel run fails exactly like the sequential one would.

// workSaturated caps the work estimate: deeply nested loops with huge
// trip counts would overflow int64 under naive trip × body-cost
// multiplication, and an overflowed (negative) estimate would wrongly
// disqualify exactly the loops most worth parallelizing. Any estimate
// at the cap already clears every threshold, so precision beyond it is
// irrelevant.
const workSaturated = int64(1) << 50

func satAdd(a, b int64) int64 {
	if a > workSaturated-b {
		return workSaturated
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > workSaturated/b {
		return workSaturated
	}
	return a * b
}

// estimateWork statically estimates a statement list's cost in
// abstract operations: expression nodes count individually (an array
// access costs more than a scalar read), nested loops multiply by
// their trip counts. The estimate saturates at workSaturated instead
// of overflowing.
func estimateWork(stmts []Stmt) int64 {
	var total int64
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			trip := tripCount(x.From, x.To, x.Step)
			total = satAdd(total, satAdd(1, satMul(trip, estimateWork(x.Body))))
		case *If:
			thenW := estimateWork(x.Then)
			elseW := estimateWork(x.Else)
			if elseW > thenW {
				thenW = elseW
			}
			total = satAdd(total, satAdd(1, thenW))
		case *Assign:
			total = satAdd(total, satAdd(2, vexprWork(x.Rhs)))
		case *SetScalar:
			total = satAdd(total, satAdd(1, vexprWork(x.Rhs)))
		default:
			total = satAdd(total, 1)
		}
	}
	return total
}

// vexprWork counts the operations of a value expression.
func vexprWork(e VExpr) int64 {
	switch x := e.(type) {
	case *ARef:
		return 2 // offset + load
	case *VFromInt:
		return 2
	case *VBin:
		return satAdd(1, satAdd(vexprWork(x.L), vexprWork(x.R)))
	case *VNeg:
		return satAdd(1, vexprWork(x.X))
	case *VCall:
		t := int64(4)
		for _, a := range x.Args {
			t = satAdd(t, vexprWork(a))
		}
		return t
	case *VCond:
		w := vexprWork(x.T)
		if e := vexprWork(x.E); e > w {
			w = e
		}
		return satAdd(2, w)
	}
	return 1
}

// tripSaturated is the trip-count cap: spans too wide for int64
// arithmetic clamp here instead of wrapping negative. A negative
// "trip" used to reach the cost model for loops like [−2^62 .. 2^62],
// where chooseTile would hand the tiled executors a zero (or negative)
// tile extent.
const tripSaturated = int64(1) << 62

func tripCount(from, to, step int64) int64 {
	if step == 0 {
		return 0
	}
	var span, mag uint64
	if step > 0 {
		if to < from {
			return 0
		}
		span = uint64(to) - uint64(from)
		mag = uint64(step)
	} else {
		if to > from {
			return 0
		}
		span = uint64(from) - uint64(to)
		mag = -uint64(step)
	}
	trips := span/mag + 1
	if trips >= uint64(tripSaturated) {
		return tripSaturated
	}
	return int64(trips)
}

// cInd is a compiled induction register: an entry-time base value and
// a constant per-iteration step. Sequential loops advance the slot in
// place; parallel workers rebind it per iteration as base + t·step so
// no sequential carry is needed.
type cInd struct {
	slot int
	init intFn
	step int64
}

// workersFor resolves the effective cohort size for this run: the
// frame's worker count (set from Options.Workers or GOMAXPROCS when the
// run started) capped by the schedulable parallelism.
func workersFor(f *frame, limit int64) int {
	w := f.workers
	if w < 1 {
		w = 1
	}
	if int64(w) > limit {
		w = int(limit)
	}
	return w
}

// compileShardLoop splits a dependence-free loop's [0..trip) iteration
// space into one contiguous chunk per worker. seq is the sequential
// fallback used when the run has a single worker.
func (c *compiler) compileShardLoop(x *Loop, slot int, from, step, trip int64, inds []cInd, seq stmtFn) stmtFn {
	body := c.compileStmts(x.Body)
	fp := c.fp
	return func(f *frame) {
		w := workersFor(f, trip)
		if w <= 1 {
			seq(f)
			return
		}
		bases := make([]int64, len(inds))
		for i := range inds {
			bases[i] = inds[i].init(f)
		}
		chunk := (trip + int64(w) - 1) / int64(w)
		errs := make([]parError, w)
		runParallel(w, func(wi int) {
			lo := int64(wi) * chunk
			hi := lo + chunk
			if hi > trip {
				hi = trip
			}
			if lo >= hi {
				return
			}
			wf := fp.get(f)
			defer fp.put(wf)
			var t int64
			defer func() {
				if r := recover(); r != nil {
					ee, ok := r.(*ExecError)
					if !ok {
						panic(r)
					}
					// The rest of this chunk is skipped; its
					// iterations all follow t, so t is the chunk's
					// first failure.
					errs[wi].record(t, ee)
				}
			}()
			for t = lo; t < hi; t++ {
				wf.ints[slot] = from + t*step
				for i := range inds {
					wf.ints[inds[i].slot] = bases[i] + t*inds[i].step
				}
				runAll(body, wf)
			}
		})
		raiseMin(errs)
	}
}

// compileMonoShardLoop shards a loop whose write subscript
// (Par.AlignOn, typically an indirect idx!(i) read) has been verified
// non-decreasing over the iteration space. Naive per-worker chunk
// boundaries are advanced to the next change of the subscript value, so
// a run of equal subscripts never straddles two chunks: each output
// element is written by exactly one worker, in sequential iteration
// order, and the parallel result is bitwise identical to the
// sequential left-to-right accumulation. Every worker computes the
// boundary adjustment with the same pure function, so adjacent workers
// agree on their shared boundary without communicating.
func (c *compiler) compileMonoShardLoop(x *Loop, slot int, from, step, trip int64, inds []cInd, seq stmtFn) stmtFn {
	if x.Par.AlignOn == nil {
		return nil
	}
	align := c.compileInt(x.Par.AlignOn)
	body := c.compileStmts(x.Body)
	fp := c.fp
	return func(f *frame) {
		w := workersFor(f, trip)
		if w <= 1 {
			seq(f)
			return
		}
		bases := make([]int64, len(inds))
		for i := range inds {
			bases[i] = inds[i].init(f)
		}
		chunk := (trip + int64(w) - 1) / int64(w)
		errs := make([]parError, w)
		runParallel(w, func(wi int) {
			wf := fp.get(f)
			defer fp.put(wf)
			var t int64
			bind := func(p int64) {
				wf.ints[slot] = from + p*step
				for i := range inds {
					wf.ints[inds[i].slot] = bases[i] + p*inds[i].step
				}
			}
			alignAt := func(p int64) int64 {
				t = p // failures during probing report the probe point
				bind(p)
				return align(wf)
			}
			advance := func(p int64) int64 {
				for p > 0 && p < trip && alignAt(p) == alignAt(p-1) {
					p++
				}
				return p
			}
			defer func() {
				if r := recover(); r != nil {
					ee, ok := r.(*ExecError)
					if !ok {
						panic(r)
					}
					errs[wi].record(t, ee)
				}
			}()
			lo := advance(int64(wi) * chunk)
			hi := int64(wi+1) * chunk
			if hi > trip {
				hi = trip
			}
			hi = advance(hi)
			for t = lo; t < hi; t++ {
				bind(t)
				runAll(body, wf)
			}
		})
		raiseMin(errs)
	}
}

// compileChainsLoop runs the g residue-class chains of a 1-D
// constant-distance recurrence concurrently: all carried distances are
// multiples of g, so iterations t and t' only depend on each other when
// t ≡ t' (mod g), and each chain is executed in order by one worker.
func (c *compiler) compileChainsLoop(x *Loop, slot int, from, step, trip int64, inds []cInd, seq stmtFn) stmtFn {
	g := x.Par.Chains
	body := c.compileStmts(x.Body)
	fp := c.fp
	return func(f *frame) {
		w := workersFor(f, g)
		if w <= 1 {
			seq(f)
			return
		}
		bases := make([]int64, len(inds))
		for i := range inds {
			bases[i] = inds[i].init(f)
		}
		errs := make([]parError, w)
		runParallel(w, func(wi int) {
			wf := fp.get(f)
			defer fp.put(wf)
			for r := int64(wi); r < g; r += int64(w) {
				// A failure ends its chain (later links read the
				// failed element) but other chains are independent and
				// keep running, so the globally first failure is
				// always reached and recorded.
				func() {
					var t int64
					defer func() {
						if r := recover(); r != nil {
							ee, ok := r.(*ExecError)
							if !ok {
								panic(r)
							}
							errs[wi].record(t, ee)
						}
					}()
					for t = r; t < trip; t += g {
						wf.ints[slot] = from + t*step
						for i := range inds {
							wf.ints[inds[i].slot] = bases[i] + t*inds[i].step
						}
						runAll(body, wf)
					}
				}()
			}
		})
		raiseMin(errs)
	}
}

// tiledNest is the compiled form of a 2-D nest scheduled as cache
// tiles: the outer loop, optional per-row prefix statements, and the
// inner loop whose body is the tile kernel. Both loops step by +1.
type tiledNest struct {
	fp        *framePool
	oSlot     int
	oFrom, ni int64
	oInds     []cInd
	prefix    []stmtFn
	iSlot     int
	iFrom, nj int64
	iInds     []cInd
	body      []stmtFn
	tI, tJ    int64
}

// runTile executes tile (bi,bj) on the worker frame wf: rows in order,
// the row prefix first when the tile is in column 0, then the row's
// inner chunk. Runtime failures are recorded (tagged with the
// iteration's rank in sequential order) and end the tile; later tiles
// of the same worker still run, which guarantees the globally first
// failure is reached regardless of tile-to-worker assignment.
func (tn *tiledNest) runTile(wf *frame, bi, bj int64, oBases []int64, perr *parError) {
	iLo := tn.oFrom + bi*tn.tI
	iHi := iLo + tn.tI
	if last := tn.oFrom + tn.ni; iHi > last {
		iHi = last
	}
	jLo := tn.iFrom + bj*tn.tJ
	jHi := jLo + tn.tJ
	if last := tn.iFrom + tn.nj; jHi > last {
		jHi = last
	}
	var i, j int64
	inPrefix := false
	defer func() {
		if r := recover(); r != nil {
			ee, ok := r.(*ExecError)
			if !ok {
				panic(r)
			}
			// Rank iterations so a row's prefix sorts after the
			// previous row's last point and before the row's own
			// points.
			rank := (i - tn.oFrom) * (tn.nj + 1)
			if !inPrefix {
				rank += 1 + (j - tn.iFrom)
			}
			perr.record(rank, ee)
		}
	}()
	for i = iLo; i < iHi; i++ {
		wf.ints[tn.oSlot] = i
		for r := range tn.oInds {
			wf.ints[tn.oInds[r].slot] = oBases[r] + (i-tn.oFrom)*tn.oInds[r].step
		}
		if bj == 0 && len(tn.prefix) > 0 {
			inPrefix = true
			runAll(tn.prefix, wf)
			inPrefix = false
		}
		for r := range tn.iInds {
			wf.ints[tn.iInds[r].slot] = tn.iInds[r].init(wf) + (jLo-tn.iFrom)*tn.iInds[r].step
		}
		for j = jLo; j < jHi; j++ {
			wf.ints[tn.iSlot] = j
			runAll(tn.body, wf)
			for r := range tn.iInds {
				wf.ints[tn.iInds[r].slot] += tn.iInds[r].step
			}
		}
	}
}

// compileTiledNest compiles a ParTile or ParWavefront schedule. ParTile
// tiles are fully independent and distributed block-cyclically;
// ParWavefront walks tile anti-diagonals with a cohort barrier between
// diagonals, so every carried dependence (component-wise non-negative
// by the planner's legality check) crosses a completed diagonal.
// Returns nil when the nest shape is not the one the planner scheduled
// (defensive — the caller then falls back to sequential execution).
func (c *compiler) compileTiledNest(x *Loop, slot int, from, trip int64, inds []cInd, seq stmtFn) stmtFn {
	if x.Step != 1 || len(x.Body) == 0 {
		return nil
	}
	inner, ok := x.Body[len(x.Body)-1].(*Loop)
	if !ok || inner.Step != 1 {
		return nil
	}
	sched := x.Par
	if sched.TileI < 1 || sched.TileJ < 1 {
		return nil
	}
	iSlot := c.intSlots[inner.Var]
	iTrip := tripCount(inner.From, inner.To, inner.Step)
	iInds := make([]cInd, len(inner.Inds))
	for i, ind := range inner.Inds {
		iInds[i] = cInd{slot: c.intSlots[ind.Name], init: c.compileInt(ind.Init), step: ind.Step}
	}
	tn := &tiledNest{
		fp:     c.fp,
		oSlot:  slot,
		oFrom:  from,
		ni:     trip,
		oInds:  inds,
		prefix: c.compileStmts(x.Body[:len(x.Body)-1]),
		iSlot:  iSlot,
		iFrom:  inner.From,
		nj:     iTrip,
		iInds:  iInds,
		body:   c.compileStmts(inner.Body),
		tI:     sched.TileI,
		tJ:     sched.TileJ,
	}
	nti := (trip + tn.tI - 1) / tn.tI
	ntj := (iTrip + tn.tJ - 1) / tn.tJ
	wavefront := sched.Kind == ParWavefront
	maxPar := nti * ntj
	if wavefront {
		maxPar = nti
		if ntj < nti {
			maxPar = ntj
		}
	}
	return func(f *frame) {
		w := workersFor(f, maxPar)
		if w <= 1 || trip == 0 || iTrip == 0 {
			seq(f)
			return
		}
		oBases := make([]int64, len(inds))
		for i := range inds {
			oBases[i] = inds[i].init(f)
		}
		errs := make([]parError, w)
		if wavefront {
			bar := newBarrier(w)
			runParallel(w, func(wi int) {
				wf := tn.fp.get(f)
				defer tn.fp.put(wf)
				for d := int64(0); d < nti+ntj-1; d++ {
					biLo := d - (ntj - 1)
					if biLo < 0 {
						biLo = 0
					}
					biHi := d
					if biHi > nti-1 {
						biHi = nti - 1
					}
					for bi := biLo + int64(wi); bi <= biHi; bi += int64(w) {
						tn.runTile(wf, bi, d-bi, oBases, &errs[wi])
					}
					bar.await()
				}
			})
		} else {
			total := nti * ntj
			runParallel(w, func(wi int) {
				wf := tn.fp.get(f)
				defer tn.fp.put(wf)
				for tid := int64(wi); tid < total; tid += int64(w) {
					tn.runTile(wf, tid/ntj, tid%ntj, oBases, &errs[wi])
				}
			})
		}
		raiseMin(errs)
	}
}
