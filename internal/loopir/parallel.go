package loopir

import (
	"runtime"
	"sync"
)

// Parallel execution of dependence-free loops (the paper's section 10
// extension). The scheduler guarantees the loop carries no dependences
// and the code generator guarantees the body's only shared state is
// disjoint array elements, so instances may run concurrently; each
// worker gets its own frame (loop variables and scalars are
// thread-local, array storage and definedness bitmaps are shared).

// Sharding thresholds: a loop is worth parallelizing when it has
// enough instances to split across workers AND enough total work (trip
// × statically-estimated body cost) to amortize goroutine startup.
const (
	minParallelTrip = 64
	minParallelWork = 1 << 15
)

// workSaturated caps the work estimate: deeply nested loops with huge
// trip counts would overflow int64 under naive trip × body-cost
// multiplication, and an overflowed (negative) estimate would wrongly
// disqualify exactly the loops most worth parallelizing. Any estimate
// at the cap already clears every threshold, so precision beyond it is
// irrelevant.
const workSaturated = int64(1) << 50

func satAdd(a, b int64) int64 {
	if a > workSaturated-b {
		return workSaturated
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > workSaturated/b {
		return workSaturated
	}
	return a * b
}

// estimateWork statically estimates a statement list's cost in
// abstract operations; nested loops multiply by their trip counts.
// The estimate saturates at workSaturated instead of overflowing.
func estimateWork(stmts []Stmt) int64 {
	var total int64
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			trip := tripCount(x.From, x.To, x.Step)
			total = satAdd(total, satAdd(1, satMul(trip, estimateWork(x.Body))))
		case *If:
			thenW := estimateWork(x.Then)
			elseW := estimateWork(x.Else)
			if elseW > thenW {
				thenW = elseW
			}
			total = satAdd(total, satAdd(1, thenW))
		default:
			total = satAdd(total, 1)
		}
	}
	return total
}

func tripCount(from, to, step int64) int64 {
	if step > 0 {
		if to < from {
			return 0
		}
		return (to-from)/step + 1
	}
	if to > from {
		return 0
	}
	return (from-to)/(-step) + 1
}

// cloneFrame gives a worker its own register file over the shared
// arrays.
func cloneFrame(f *frame) *frame {
	out := &frame{
		ints:   make([]int64, len(f.ints)),
		floats: make([]float64, len(f.floats)),
		arrays: f.arrays,
		defs:   f.defs,
	}
	copy(out.ints, f.ints)
	copy(out.floats, f.floats)
	return out
}

// cInd is a compiled induction register: an entry-time base value and
// a constant per-iteration step. Sequential loops advance the slot in
// place; parallel workers rebind it per iteration as base + t·step so
// sharding needs no sequential carry.
type cInd struct {
	slot int
	init intFn
	step int64
}

// compileParallelLoop shards [0..trip) across workers. Runtime errors
// (panics carrying *ExecError) inside workers are captured and
// re-raised on the caller's goroutine after all workers finish.
func compileParallelLoop(slot int, from, step, trip int64, inds []cInd, body []stmtFn) stmtFn {
	workers := int64(runtime.GOMAXPROCS(0))
	if workers < 1 {
		workers = 1
	}
	if workers > trip {
		workers = trip
	}
	return func(f *frame) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr *ExecError
		bases := make([]int64, len(inds))
		for i := range inds {
			bases[i] = inds[i].init(f)
		}
		chunk := (trip + workers - 1) / workers
		for w := int64(0); w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > trip {
				hi = trip
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int64) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if ee, ok := r.(*ExecError); ok {
							mu.Lock()
							if firstErr == nil {
								firstErr = ee
							}
							mu.Unlock()
							return
						}
						panic(r)
					}
				}()
				wf := cloneFrame(f)
				for t := lo; t < hi; t++ {
					wf.ints[slot] = from + t*step
					for i := range inds {
						wf.ints[inds[i].slot] = bases[i] + t*inds[i].step
					}
					runAll(body, wf)
				}
			}(lo, hi)
		}
		wg.Wait()
		if firstErr != nil {
			panic(firstErr)
		}
	}
}
