package loopir

import (
	"sync"
)

// Persistent worker pool shared by every parallel loop execution in the
// process. Workers are plain goroutines parked on a private channel;
// acquiring one hands it a closure, and when the closure returns the
// worker parks itself back on the idle stack instead of exiting. This
// removes the goroutine spawn from the steady-state cost of a parallel
// loop — a compiled program executed repeatedly (the benchmark and
// server cases) reuses the same workers every run.
//
// The pool is safe for concurrent use: several Execs (or several runs
// of one Exec) may run parallel loops at the same time, each borrowing
// as many workers as it needs. There is no fixed pool size — a request
// that finds the idle stack empty simply starts another goroutine, so a
// cohort of SPMD workers that synchronize through a barrier can never
// deadlock waiting for each other to be scheduled. Only the parked
// reserve is bounded.

const maxIdleWorkers = 64

var workerPool struct {
	mu   sync.Mutex
	idle []chan func()
}

// acquireWorker returns a channel feeding a live worker goroutine.
func acquireWorker() chan func() {
	workerPool.mu.Lock()
	if n := len(workerPool.idle); n > 0 {
		ch := workerPool.idle[n-1]
		workerPool.idle[n-1] = nil
		workerPool.idle = workerPool.idle[:n-1]
		workerPool.mu.Unlock()
		return ch
	}
	workerPool.mu.Unlock()
	ch := make(chan func())
	go workerLoop(ch)
	return ch
}

func workerLoop(ch chan func()) {
	for fn := range ch {
		fn()
		workerPool.mu.Lock()
		if len(workerPool.idle) >= maxIdleWorkers {
			workerPool.mu.Unlock()
			return
		}
		workerPool.idle = append(workerPool.idle, ch)
		workerPool.mu.Unlock()
	}
}

// runParallel executes fn(0) … fn(n-1) concurrently — fn(0) on the
// calling goroutine, the rest on pool workers — and returns when all
// have finished. Each fn runs on its own goroutine, so the cohort may
// synchronize internally (wavefront barriers). fn must not panic:
// parallel loop bodies convert runtime failures to recorded errors.
func runParallel(n int, fn func(w int)) {
	if n <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for w := 1; w < n; w++ {
		ch := acquireWorker()
		w := w
		ch <- func() {
			defer wg.Done()
			fn(w)
		}
	}
	fn(0)
	wg.Wait()
}

// spmdBarrier is a reusable generation barrier for a fixed cohort. A
// condition variable (rather than a spin loop) keeps it correct when
// the cohort is larger than GOMAXPROCS.
type spmdBarrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *spmdBarrier {
	b := &spmdBarrier{n: n}
	b.cond.L = &b.mu
	return b
}

// await blocks until all n cohort members have called it, then releases
// the whole cohort and resets for the next phase.
func (b *spmdBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// framePool recycles per-worker register frames across loop executions.
// Slot counts are fixed per compiled program, so the pool lives on the
// Exec and its New is bound after compilation.
type framePool struct {
	p sync.Pool
}

// get returns a worker frame: registers copied from the caller's frame,
// array storage and definedness bitmaps shared.
func (fp *framePool) get(f *frame) *frame {
	wf := fp.p.Get().(*frame)
	copy(wf.ints, f.ints)
	copy(wf.floats, f.floats)
	wf.arrays = f.arrays
	wf.defs = f.defs
	wf.workers = f.workers
	return wf
}

// put releases a worker frame back to the pool, dropping references to
// the run's array storage.
func (fp *framePool) put(wf *frame) {
	wf.arrays = nil
	wf.defs = nil
	fp.p.Put(wf)
}

// parError is one worker's first runtime failure, tagged with the
// row-major index of the failing iteration in the loop's sequential
// order. After a join the minimum index wins, so a parallel loop
// reports the same error sequential execution would have.
type parError struct {
	idx int64
	err *ExecError
}

// record keeps the lowest-index failure seen by this worker.
func (p *parError) record(idx int64, err *ExecError) {
	if p.err == nil || idx < p.idx {
		p.idx, p.err = idx, err
	}
}

// raiseMin re-raises the lowest-index error across workers, if any.
func raiseMin(errs []parError) {
	var best *parError
	for i := range errs {
		if errs[i].err == nil {
			continue
		}
		if best == nil || errs[i].idx < best.idx {
			best = &errs[i]
		}
	}
	if best != nil {
		panic(best.err)
	}
}
