package loopir

// WalkLoops calls fn for every Loop in the statement tree, outermost
// first. Instrumentation (the compile report's schedules-by-kind
// counters) and tests use it to inspect what the optimizer attached
// without duplicating the traversal.
func WalkLoops(stmts []Stmt, fn func(*Loop)) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *Loop:
			fn(st)
			WalkLoops(st.Body, fn)
		case *If:
			WalkLoops(st.Then, fn)
			WalkLoops(st.Else, fn)
		}
	}
}

// ScheduleKind names a loop's execution shape for reporting:
// "sequential" when no parallel schedule applies, the Par schedule's
// kind ("shard", "tile", "wavefront", "chains") when the optimizer
// attached one, or "shard" for loops carrying the legacy lowering-time
// parallel mark without a planned schedule.
func ScheduleKind(l *Loop) string {
	switch {
	case l.Par != nil:
		return l.Par.Kind.String()
	case l.Parallel:
		return "shard"
	default:
		return "sequential"
	}
}
