package loopir

import (
	"testing"

	"arraycomp/internal/runtime"
)

// runBoth compiles and executes two structurally identical programs —
// one raw, one after Optimize — and fails unless they agree on the
// result array element-wise and on error presence. build must return a
// fresh program each call (Optimize mutates in place).
func runBoth(t *testing.T, build func() *Program) *OptStats {
	t.Helper()
	raw := build()
	opt := build()
	stats := Optimize(opt)
	wantOut, wantErr := execProgram(t, raw)
	gotOut, gotErr := execProgram(t, opt)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("error disagreement: raw err=%v, optimized err=%v\noptimized IR:\n%s",
			wantErr, gotErr, opt.Dump())
	}
	if wantErr != nil {
		return stats
	}
	if wantOut.B.Size() != gotOut.B.Size() {
		t.Fatalf("size disagreement: raw %v, optimized %v", wantOut.B, gotOut.B)
	}
	for off := int64(0); off < wantOut.B.Size(); off++ {
		if wantOut.Data[off] != gotOut.Data[off] {
			t.Fatalf("element %d: raw %v, optimized %v\noptimized IR:\n%s",
				off, wantOut.Data[off], gotOut.Data[off], opt.Dump())
		}
	}
	return stats
}

func execProgram(t *testing.T, p *Program) (*runtime.Strict, error) {
	t.Helper()
	ex, err := Compile(p)
	if err != nil {
		t.Fatalf("compile %s: %v\n%s", p.Name, err, p.Dump())
	}
	return ex.RunResult(nil)
}

// iref reads a[i+d].
func iref(arr string, d int64) *ARef {
	return &ARef{Array: arr, Subs: []IntExpr{lin(d, term("i", 1))}}
}

// iassign writes arr[i+d] := rhs, unchecked.
func iassign(arr string, d int64, rhs VExpr) *Assign {
	return &Assign{Array: arr, Subs: []IntExpr{lin(d, term("i", 1))}, Rhs: rhs}
}

// TestFusionLegality drives fuseAdjacent through the dependence test:
// adjacent same-header passes fuse only when no fused-loop iteration
// would read an element a later iteration writes (iteration distance
// must be ≤ 0), and never across header or barrier differences.
func TestFusionLegality(t *testing.T) {
	const n = 16
	decl := func(names ...string) []ArrayDecl {
		var ds []ArrayDecl
		for i, nm := range names {
			role := RoleTemp
			if i == 0 {
				role = RoleOut
			}
			ds = append(ds, ArrayDecl{Name: nm, B: runtime.NewBounds1(1, n), Role: role})
		}
		return ds
	}
	loop := func(from, to, step int64, body ...Stmt) *Loop {
		return &Loop{Var: "i", From: from, To: to, Step: step, Body: body}
	}
	cases := []struct {
		name     string
		build    func() *Program
		wantFuse int
	}{
		{
			// Independent arrays: always fusable.
			"disjoint arrays",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a", "b"), Stmts: []Stmt{
					loop(1, n, 1, iassign("b", 0, &VFromInt{X: &IVar{Name: "i"}})),
					loop(1, n, 1, iassign("a", 0, &VConst{Value: 2})),
				}}
			},
			1,
		},
		{
			// Same-iteration flow (read of b[i] after write of b[i]):
			// distance 0, safe.
			"same-iteration dependence",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a", "b"), Stmts: []Stmt{
					loop(1, n, 1, iassign("b", 0, &VFromInt{X: &IVar{Name: "i"}})),
					loop(1, n, 1, iassign("a", 0, &VBin{Op: '*', L: iref("b", 0), R: &VConst{Value: 2}})),
				}}
			},
			1,
		},
		{
			// Backward flow (pass 2 reads b[i-1], written one iteration
			// earlier): distance -1, safe.
			"backward dependence",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a", "b"), Stmts: []Stmt{
					loop(1, n, 1, iassign("b", 0, &VFromInt{X: &IVar{Name: "i"}})),
					loop(2, n, 1, &Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 1))}, Rhs: iref("b", -1)}),
				}}
			},
			0, // headers differ (from 1 vs 2) — must not fuse
		},
		{
			// Same headers, backward flow: legal.
			"backward dependence same header",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a", "b"), Stmts: []Stmt{
					loop(2, n, 1, iassign("b", 0, &VFromInt{X: &IVar{Name: "i"}})),
					loop(2, n, 1, iassign("a", 0, iref("b", -1))),
				}}
			},
			1,
		},
		{
			// Forward flow: pass 2 reads b[i+1], which pass 1 writes in
			// a LATER fused iteration. The split loops see the final
			// values; the fused loop would read stale ones. Must not
			// fuse — this is the dependence-carrying pass split.
			"forward dependence",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a", "b"), Stmts: []Stmt{
					loop(1, n, 1, iassign("b", 0, &VFromInt{X: &IVar{Name: "i"}})),
					loop(1, n-1, 1, iassign("a", 0, iref("b", 1))),
				}}
			},
			0,
		},
		{
			// Forward output dependence with equal trip counts (so the
			// headers match exactly): pass 1 writes b[i], pass 2
			// rewrites b[i+1] — fusing would let pass 1's iteration i+1
			// clobber pass 2's earlier write.
			"forward output dependence",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a", "b"), Stmts: []Stmt{
					loop(1, n-1, 1, iassign("b", 0, &VFromInt{X: &IVar{Name: "i"}})),
					loop(1, n-1, 1, iassign("b", 1, &VConst{Value: 7})),
					loop(1, n, 1, iassign("a", 0, iref("b", 0))),
				}}
			},
			0,
		},
		{
			// Direction change: identical ranges walked opposite ways
			// must never fuse, even though the write sets are disjoint
			// arrays (headers differ).
			"direction change",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a", "b"), Stmts: []Stmt{
					loop(1, n, 1, iassign("b", 0, &VFromInt{X: &IVar{Name: "i"}})),
					loop(n, 1, -1, iassign("a", 0, &VConst{Value: 1})),
				}}
			},
			0,
		},
		{
			// Disjoint index ranges of the same array: the exact
			// distance test finds no feasible dependence.
			"disjoint halves",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a"), Stmts: []Stmt{
					&Loop{Var: "i", From: 1, To: n / 2, Step: 1, Body: []Stmt{iassign("a", 0, &VConst{Value: 1})}},
					&Loop{Var: "i", From: 1, To: n / 2, Step: 1, Body: []Stmt{iassign("a", n/2, &VConst{Value: 2})}},
				}}
			},
			1,
		},
		{
			// A Fail statement between two fusable loops is a barrier.
			"fail barrier",
			func() *Program {
				return &Program{Name: "p", Arrays: decl("a", "b"), Stmts: []Stmt{
					loop(1, n, 1, iassign("b", 0, &VConst{Value: 1})),
					&If{Cond: &BConst{Value: false}, Then: []Stmt{&Fail{Msg: "nope"}}},
					loop(1, n, 1, iassign("a", 0, &VConst{Value: 2})),
				}}
			},
			0,
		},
		{
			// Both passes write the same scalar: order matters for the
			// final value, so fusion is rejected.
			"shared scalar",
			func() *Program {
				p := &Program{Name: "p", Arrays: decl("a"), Scalars: []string{"s"}, Stmts: []Stmt{
					loop(1, n, 1,
						&SetScalar{Name: "s", Rhs: &VFromInt{X: &IVar{Name: "i"}}},
						iassign("a", 0, &VScalar{Name: "s"})),
					loop(1, n, 1,
						&SetScalar{Name: "s", Rhs: &VConst{Value: 9}}),
				}}
				return p
			},
			0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stats := runBoth(t, tc.build)
			if stats.FusedLoops != tc.wantFuse {
				t.Errorf("FusedLoops = %d, want %d\noptimized IR:\n%s",
					stats.FusedLoops, tc.wantFuse, func() string { p := tc.build(); Optimize(p); return p.Dump() }())
			}
		})
	}
}

// TestFusionKeepsParallelOnlyWhenIndependent checks that fusing two
// parallel passes with a distance-0 dependence produces a sequential
// loop (the cross-pass flow is now intra-iteration, but conservatively
// only distance-free fusions stay parallel when every dependence is
// same-iteration and the analysis proves it).
func TestFusionCarriedKillsParallel(t *testing.T) {
	const n = 64
	build := func() *Program {
		return &Program{
			Name: "p",
			Arrays: []ArrayDecl{
				{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut},
				{Name: "b", B: runtime.NewBounds1(1, n), Role: RoleTemp},
			},
			Stmts: []Stmt{
				&Loop{Var: "i", From: 1, To: n, Step: 1, Parallel: true, Body: []Stmt{
					iassign("b", 0, &VFromInt{X: &IVar{Name: "i"}}),
				}},
				&Loop{Var: "i", From: 1, To: n, Step: 1, Parallel: true, Body: []Stmt{
					iassign("a", 0, iref("b", 0)),
				}},
			},
		}
	}
	stats := runBoth(t, build)
	if stats.FusedLoops != 1 {
		t.Fatalf("FusedLoops = %d, want 1", stats.FusedLoops)
	}
	p := build()
	Optimize(p)
	var loops []*Loop
	for _, s := range p.Stmts {
		if l, ok := s.(*Loop); ok {
			loops = append(loops, l)
		}
	}
	if len(loops) != 1 {
		t.Fatalf("want a single fused loop, got %d:\n%s", len(loops), p.Dump())
	}
	if !loops[0].Parallel {
		t.Errorf("distance-0 dependence should keep the fused loop parallel:\n%s", p.Dump())
	}
}

// TestGuardHoisting covers invariant-guard unswitching and its safety
// valves.
func TestGuardHoisting(t *testing.T) {
	const n = 8
	arrs := []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}}
	scalarGT := func(s string, v float64) BExpr {
		return &BCmpFloat{Op: ">", L: &VScalar{Name: s}, R: &VConst{Value: v}}
	}
	t.Run("whole guard unswitched", func(t *testing.T) {
		build := func() *Program {
			return &Program{Name: "p", Arrays: arrs, Scalars: []string{"s"}, Stmts: []Stmt{
				&SetScalar{Name: "s", Rhs: &VConst{Value: 1}},
				&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
					&If{Cond: scalarGT("s", 0),
						Then: []Stmt{iassign("a", 0, &VConst{Value: 1})},
						Else: []Stmt{iassign("a", 0, &VConst{Value: 2})}},
				}},
				&Fill{Array: "a", Value: 0}, // keeps "a" defined on both paths irrelevant; see below
			}}
		}
		// Fill after the loop would clobber; drop it — build a simpler shape.
		build = func() *Program {
			return &Program{Name: "p", Arrays: arrs, Scalars: []string{"s"}, Stmts: []Stmt{
				&SetScalar{Name: "s", Rhs: &VConst{Value: 1}},
				&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
					&If{Cond: scalarGT("s", 0),
						Then: []Stmt{iassign("a", 0, &VConst{Value: 1})},
						Else: []Stmt{iassign("a", 0, &VConst{Value: 2})}},
				}},
			}}
		}
		stats := runBoth(t, build)
		if stats.Unswitched != 1 {
			t.Errorf("Unswitched = %d, want 1", stats.Unswitched)
		}
	})
	t.Run("variant guard stays", func(t *testing.T) {
		build := func() *Program {
			return &Program{Name: "p", Arrays: arrs, Stmts: []Stmt{
				&Fill{Array: "a", Value: 0},
				&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
					&If{Cond: &BCmpInt{Op: "==", L: &IVar{Name: "i"}, R: &IConst{Value: 3}},
						Then: []Stmt{iassign("a", 0, &VConst{Value: 1})}},
				}},
			}}
		}
		stats := runBoth(t, build)
		if stats.Unswitched != 0 {
			t.Errorf("Unswitched = %d, want 0", stats.Unswitched)
		}
	})
	t.Run("conjunct split", func(t *testing.T) {
		// s > 0 is invariant and total; i == 3 is variant. The
		// invariant conjunct moves out, the variant one stays.
		build := func() *Program {
			return &Program{Name: "p", Arrays: arrs, Scalars: []string{"s"}, Stmts: []Stmt{
				&Fill{Array: "a", Value: 0},
				&SetScalar{Name: "s", Rhs: &VConst{Value: 1}},
				&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
					&If{Cond: &BAnd{
						L: &BCmpInt{Op: "==", L: &IVar{Name: "i"}, R: &IConst{Value: 3}},
						R: scalarGT("s", 0),
					}, Then: []Stmt{iassign("a", 0, &VConst{Value: 1})}},
				}},
			}}
		}
		stats := runBoth(t, build)
		if stats.Unswitched != 1 {
			t.Errorf("Unswitched = %d, want 1", stats.Unswitched)
		}
	})
	t.Run("failing conjunct not hoisted", func(t *testing.T) {
		// The guard is `i == 99 && 1/(i-i) == 1`. && short-circuits and
		// the left side is always false, so the division by zero never
		// runs. Splitting the invariant-looking right conjunct out of
		// the loop would introduce a failure that the original program
		// does not have; runBoth checks error agreement.
		divZero := &BCmpInt{Op: "==",
			L: &IBin{Op: '/', L: &IConst{Value: 1}, R: &IBin{Op: '-', L: &IVar{Name: "i"}, R: &IVar{Name: "i"}}},
			R: &IConst{Value: 1}}
		build := func() *Program {
			return &Program{Name: "p", Arrays: arrs, Stmts: []Stmt{
				&Fill{Array: "a", Value: 0},
				&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
					&If{Cond: &BAnd{
						L: &BCmpInt{Op: "==", L: &IVar{Name: "i"}, R: &IConst{Value: 99}},
						R: divZero,
					}, Then: []Stmt{iassign("a", 0, &VConst{Value: 1})}},
				}},
			}}
		}
		runBoth(t, build)
	})
}

// TestScalarAndSubexprHoisting checks loop-invariant SetScalar motion
// and common-subexpression extraction out of loop bodies.
func TestScalarAndSubexprHoisting(t *testing.T) {
	const n = 8
	t.Run("invariant SetScalar", func(t *testing.T) {
		build := func() *Program {
			return &Program{
				Name:    "p",
				Arrays:  []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
				Scalars: []string{"s"},
				Stmts: []Stmt{
					&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
						&SetScalar{Name: "s", Rhs: &VConst{Value: 2.5}},
						iassign("a", 0, &VScalar{Name: "s"}),
					}},
				},
			}
		}
		stats := runBoth(t, build)
		if stats.HoistedScalars != 1 {
			t.Errorf("HoistedScalars = %d, want 1", stats.HoistedScalars)
		}
	})
	t.Run("invariant subexpression", func(t *testing.T) {
		// sqrt(s) is invariant inside the loop; the optimizer gives it
		// a fresh scalar computed once before the loop.
		build := func() *Program {
			return &Program{
				Name:    "p",
				Arrays:  []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
				Scalars: []string{"s"},
				Stmts: []Stmt{
					&SetScalar{Name: "s", Rhs: &VConst{Value: 9}},
					&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
						iassign("a", 0, &VBin{Op: '+',
							L: &VCall{Fn: "sqrt", Args: []VExpr{&VScalar{Name: "s"}}},
							R: &VFromInt{X: &IVar{Name: "i"}}}),
					}},
				},
			}
		}
		stats := runBoth(t, build)
		if stats.HoistedExprs != 1 {
			t.Errorf("HoistedExprs = %d, want 1", stats.HoistedExprs)
		}
	})
}

// TestStrengthReductionStrides checks the induction-register
// bookkeeping, in particular under negative loop directions where the
// register step must follow the loop step's sign.
func TestStrengthReductionStrides(t *testing.T) {
	const n = 12
	t.Run("backward 1-D", func(t *testing.T) {
		// do i = n..2 step -1: a[i] := a[i-1] * 2 — reads march
		// backwards alongside writes.
		build := func() *Program {
			return &Program{
				Name:   "p",
				Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
				Stmts: []Stmt{
					&Fill{Array: "a", Value: 3},
					&Loop{Var: "i", From: n, To: 2, Step: -1, Body: []Stmt{
						iassign("a", 0, &VBin{Op: '*', L: iref("a", -1), R: &VConst{Value: 2}}),
					}},
				},
			}
		}
		stats := runBoth(t, build)
		if stats.IndRegisters == 0 || stats.ReducedAccesses == 0 {
			t.Fatalf("expected strength reduction, got %+v", *stats)
		}
		p := build()
		Optimize(p)
		var l *Loop
		for _, s := range p.Stmts {
			if x, ok := s.(*Loop); ok {
				l = x
			}
		}
		if l == nil || len(l.Inds) != 1 {
			t.Fatalf("want one induction register:\n%s", p.Dump())
		}
		if l.Inds[0].Step != -1 {
			t.Errorf("ind step = %d, want -1 (loop step -1 × coeff 1):\n%s", l.Inds[0].Step, p.Dump())
		}
	})
	t.Run("backward 2-D row base", func(t *testing.T) {
		// Backward outer row loop over a 2-D mesh: the inner register's
		// per-row Init depends on the outer variable, and the outer
		// walk is descending.
		build := func() *Program {
			return &Program{
				Name:   "p",
				Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleOut}},
				Stmts: []Stmt{
					&Fill{Array: "a", Value: 0},
					&Loop{Var: "i", From: n, To: 1, Step: -1, Body: []Stmt{
						&Loop{Var: "j", From: 1, To: n, Step: 1, Body: []Stmt{
							&Assign{Array: "a",
								Subs: []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
								Rhs:  &VFromInt{X: &IBin{Op: '+', L: &IBin{Op: '*', L: &IVar{Name: "i"}, R: &IConst{Value: 100}}, R: &IVar{Name: "j"}}}},
						}},
					}},
				},
			}
		}
		stats := runBoth(t, build)
		if stats.IndRegisters == 0 {
			t.Fatalf("expected an induction register, got %+v", *stats)
		}
	})
	t.Run("non-unit coefficient", func(t *testing.T) {
		// a[3i] walks with stride 3; the register step must be
		// coeff × loop step = 3.
		build := func() *Program {
			return &Program{
				Name:   "p",
				Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 3*n), Role: RoleOut}},
				Stmts: []Stmt{
					&Fill{Array: "a", Value: 0},
					&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
						&Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 3))}, Rhs: &VFromInt{X: &IVar{Name: "i"}}},
					}},
				},
			}
		}
		runBoth(t, build)
		p := build()
		Optimize(p)
		var l *Loop
		for _, s := range p.Stmts {
			if x, ok := s.(*Loop); ok {
				l = x
			}
		}
		if l == nil || len(l.Inds) != 1 || l.Inds[0].Step != 3 {
			t.Fatalf("want one stride-3 induction register:\n%s", p.Dump())
		}
	})
}

// TestDeadLoopRemoval: zero-trip loops disappear before any other pass
// (which is what makes trip ≥ 1 a sound hoisting precondition).
func TestDeadLoopRemoval(t *testing.T) {
	const n = 4
	build := func() *Program {
		return &Program{
			Name:   "p",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
			Stmts: []Stmt{
				&Fill{Array: "a", Value: 1},
				&Loop{Var: "i", From: 5, To: 4, Step: 1, Body: []Stmt{
					iassign("a", 0, &VConst{Value: 99}),
				}},
			},
		}
	}
	stats := runBoth(t, build)
	if stats.DeadLoops != 1 {
		t.Errorf("DeadLoops = %d, want 1", stats.DeadLoops)
	}
}

// TestEstimateWorkSaturates: a nest of huge trip counts must clamp at
// workSaturated rather than wrapping negative (which used to disable
// the parallel executor for exactly the loops that want it most).
func TestEstimateWorkSaturates(t *testing.T) {
	body := []Stmt{&SetScalar{Name: "s", Rhs: &VConst{Value: 1}}}
	for d := 0; d < 5; d++ {
		body = []Stmt{&Loop{Var: "i", From: 1, To: 1 << 40, Step: 1, Body: body}}
	}
	got := estimateWork(body)
	if got != workSaturated {
		t.Fatalf("estimateWork = %d, want saturation at %d", got, workSaturated)
	}
	if got <= 0 {
		t.Fatalf("estimateWork overflowed negative: %d", got)
	}
}

// TestOptimizeIdempotent: running Optimize twice must not change the
// program again (Off annotations mark accesses as already reduced).
func TestOptimizeIdempotent(t *testing.T) {
	p := squaresProgram(16)
	Optimize(p)
	first := p.Dump()
	st := Optimize(p)
	if st.Changed() {
		t.Fatalf("second Optimize changed the program: %s\n%s", st, p.Dump())
	}
	if p.Dump() != first {
		t.Fatalf("second Optimize altered the dump:\n%s\nvs\n%s", p.Dump(), first)
	}
}
