package loopir

import (
	"strings"
	"testing"

	"arraycomp/internal/idxprop"
	"arraycomp/internal/runtime"
)

// scatterProg builds the canonical dual-lowered indirect scatter
// s!(p!(i)) := x!(i): a guarded fast branch with unchecked index loads
// and untracked stores, and a fully checked fallback.
func scatterProg(guard idxprop.Claims) *Program {
	fastLoop := &Loop{
		Var: "i", From: 1, To: 4, Step: 1,
		Body: []Stmt{&Assign{
			Array:   "s",
			Subs:    []IntExpr{&IIdx{Array: "p", Subs: []IntExpr{&IVar{Name: "i"}}}},
			Rhs:     &ARef{Array: "x", Subs: []IntExpr{&IVar{Name: "i"}}, CheckBounds: true},
			NoTrack: true,
		}},
	}
	slowLoop := &Loop{
		Var: "i", From: 1, To: 4, Step: 1,
		Body: []Stmt{&Assign{
			Array:          "s",
			Subs:           []IntExpr{&IIdx{Array: "p", Subs: []IntExpr{&IVar{Name: "i"}}, CheckBounds: true}},
			Rhs:            &ARef{Array: "x", Subs: []IntExpr{&IVar{Name: "i"}}, CheckBounds: true},
			CheckBounds:    true,
			CheckCollision: true,
		}},
	}
	return &Program{
		Name: "scatter",
		Arrays: []ArrayDecl{
			{Name: "p", B: runtime.NewBounds1(1, 4), Role: RoleIn},
			{Name: "x", B: runtime.NewBounds1(1, 4), Role: RoleIn},
			{Name: "s", B: runtime.NewBounds1(1, 4), Role: RoleOut, TrackDefs: true},
		},
		Stmts: []Stmt{&If{
			Cond: &BVerify{Array: "p", Claims: guard},
			Then: []Stmt{fastLoop},
			Else: []Stmt{slowLoop, &CheckFull{Array: "s"}},
		}},
	}
}

func TestCertifyClaimsScatterCovered(t *testing.T) {
	guard := idxprop.Claims{
		{Array: "p", Kind: idxprop.KInjective},
		{Array: "p", Kind: idxprop.KRange, Lo: 1, Hi: 4},
	}
	rep := CertifyClaims(scatterProg(guard), nil)
	if err := rep.Err(); err != nil {
		t.Fatalf("covered scatter falsified: %v", err)
	}
	if rep.CertifiedCount == 0 {
		t.Fatalf("no certificate issued: %s", rep.Summary())
	}
}

func TestCertifyClaimsMissingInjectivityFalsifies(t *testing.T) {
	guard := idxprop.Claims{{Array: "p", Kind: idxprop.KRange, Lo: 1, Hi: 4}}
	rep := CertifyClaims(scatterProg(guard), nil)
	if rep.Err() == nil {
		t.Fatalf("untracked store without injectivity claim must falsify: %s", rep.Summary())
	}
	if !strings.Contains(rep.Err().Error(), "injectivity") {
		t.Fatalf("wrong falsification: %v", rep.Err())
	}
}

func TestCertifyClaimsMissingRangeFalsifies(t *testing.T) {
	guard := idxprop.Claims{{Array: "p", Kind: idxprop.KInjective}}
	rep := CertifyClaims(scatterProg(guard), nil)
	if rep.Err() == nil {
		t.Fatalf("unchecked index load without range claim must falsify")
	}
}

func TestCertifyClaimsNarrowRangeFalsifies(t *testing.T) {
	// Range claim 1..9 does not cover the destination's 1..4.
	guard := idxprop.Claims{
		{Array: "p", Kind: idxprop.KInjective},
		{Array: "p", Kind: idxprop.KRange, Lo: 1, Hi: 9},
	}
	rep := CertifyClaims(scatterProg(guard), nil)
	if rep.Err() == nil {
		t.Fatalf("range claim wider than the destination must falsify")
	}
}

func TestCertifyClaimsUnguardedFastBranchFalsifies(t *testing.T) {
	// The fast branch hoisted out of its guard: no dominating claims.
	p := scatterProg(idxprop.Claims{
		{Array: "p", Kind: idxprop.KInjective},
		{Array: "p", Kind: idxprop.KRange, Lo: 1, Hi: 4},
	})
	ifStmt := p.Stmts[0].(*If)
	p.Stmts = append(ifStmt.Then, ifStmt.Else...)
	if CertifyClaims(p, nil).Err() == nil {
		t.Fatalf("unguarded claim-assuming branch must falsify")
	}
}

func TestCertifyClaimsStaticClaimsCover(t *testing.T) {
	// Same fast branch, unguarded — but the claims were discharged
	// statically, so they hold everywhere.
	p := scatterProg(nil)
	ifStmt := p.Stmts[0].(*If)
	p.Stmts = ifStmt.Then
	static := idxprop.Claims{
		{Array: "p", Kind: idxprop.KInjective, Static: true},
		{Array: "p", Kind: idxprop.KRange, Lo: 1, Hi: 4, Static: true},
	}
	if err := CertifyClaims(p, static).Err(); err != nil {
		t.Fatalf("statically covered plan falsified: %v", err)
	}
}

func TestCertifyClaimsMonoShard(t *testing.T) {
	mk := func(guard idxprop.Claims) *Program {
		align := &IIdx{Array: "b", Subs: []IntExpr{&IVar{Name: "k"}}}
		loop := &Loop{
			Var: "k", From: 1, To: 8, Step: 1,
			Par: &ParSchedule{Kind: ParMonoShard, AlignOn: align},
			Body: []Stmt{&Assign{
				Array:    "h",
				Subs:     []IntExpr{&IIdx{Array: "b", Subs: []IntExpr{&IVar{Name: "k"}}}},
				Rhs:      &VConst{Value: 1},
				HasAccum: true,
			}},
		}
		return &Program{
			Name:    "hist",
			AccumOp: "+",
			Arrays: []ArrayDecl{
				{Name: "b", B: runtime.NewBounds1(1, 8), Role: RoleIn},
				{Name: "h", B: runtime.NewBounds1(1, 4), Role: RoleOut},
			},
			Stmts: []Stmt{
				&Fill{Array: "h", Value: 0},
				&If{
					Cond: &BVerify{Array: "b", Claims: guard},
					Then: []Stmt{loop},
					Else: []Stmt{&Fail{Msg: "fallback"}},
				},
			},
		}
	}
	full := idxprop.Claims{
		{Array: "b", Kind: idxprop.KMonoNonDec},
		{Array: "b", Kind: idxprop.KRange, Lo: 1, Hi: 4},
	}
	if err := CertifyClaims(mk(full), nil).Err(); err != nil {
		t.Fatalf("covered mono-shard falsified: %v", err)
	}
	noMono := idxprop.Claims{{Array: "b", Kind: idxprop.KRange, Lo: 1, Hi: 4}}
	if CertifyClaims(mk(noMono), nil).Err() == nil {
		t.Fatalf("mono-shard without monotonicity claim must falsify")
	}
}
