package loopir

import (
	"strings"
	"testing"

	"arraycomp/internal/runtime"
)

// b1 builds rank-1 bounds.
func b1(lo, hi int64) runtime.Bounds { return runtime.NewBounds1(lo, hi) }

// elementwiseProg is out[i] = x[i]*2 + x[i-1] for i in 2..n, out[1] = x[1].
func elementwiseProg(n int64) *Program {
	return &Program{
		Name: "ew",
		Arrays: []ArrayDecl{
			{Name: "x", B: b1(1, n), Role: RoleIn},
			{Name: "ew", B: b1(1, n), Role: RoleOut},
		},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: 1, Step: 1, Body: []Stmt{
				&Assign{Array: "ew", Subs: []IntExpr{&IVar{Name: "i"}},
					Rhs: &ARef{Array: "x", Subs: []IntExpr{&IVar{Name: "i"}}}},
			}},
			&Loop{Var: "i", From: 2, To: n, Step: 1, Body: []Stmt{
				&Assign{Array: "ew", Subs: []IntExpr{&IVar{Name: "i"}},
					Rhs: &VBin{Op: '+',
						L: &VBin{Op: '*', L: &ARef{Array: "x", Subs: []IntExpr{&IVar{Name: "i"}}}, R: &VConst{Value: 2}},
						R: &ARef{Array: "x", Subs: []IntExpr{&ILin{Const: -1, Terms: []ITerm{{Var: "i", Coeff: 1}}}}}}},
			}},
		},
	}
}

func TestStreamPlanElementwise(t *testing.T) {
	p := elementwiseProg(100)
	sp, err := BuildStreamPlan(p)
	if err != nil {
		t.Fatalf("BuildStreamPlan: %v", err)
	}
	if sp.Out != "ew" || sp.Lo != 1 || sp.Hi != 100 {
		t.Fatalf("bad output identity: %+v", sp)
	}
	if sp.SelfBack != 0 {
		t.Fatalf("no self reads expected, got SelfBack=%d", sp.SelfBack)
	}
	w := sp.Read("x")
	if w == nil || !w.Windowable || w.Back != 1 || w.Fwd != 0 {
		t.Fatalf("x window wrong: %+v", w)
	}
	if sp.MaxDist != 1 || sp.Loops != 2 {
		t.Fatalf("MaxDist=%d Loops=%d", sp.MaxDist, sp.Loops)
	}
}

// recurrenceProg is the first-order recurrence out[1]=x[1];
// out[i] = out[i-1]*0.5 + x[i].
func recurrenceProg(n int64) *Program {
	return &Program{
		Name: "rec",
		Arrays: []ArrayDecl{
			{Name: "x", B: b1(1, n), Role: RoleIn},
			{Name: "rec", B: b1(1, n), Role: RoleOut},
		},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: 1, Step: 1, Body: []Stmt{
				&Assign{Array: "rec", Subs: []IntExpr{&IVar{Name: "i"}},
					Rhs: &ARef{Array: "x", Subs: []IntExpr{&IVar{Name: "i"}}}},
			}},
			&Loop{Var: "i", From: 2, To: n, Step: 1, Body: []Stmt{
				&Assign{Array: "rec", Subs: []IntExpr{&IVar{Name: "i"}},
					Rhs: &VBin{Op: '+',
						L: &VBin{Op: '*', L: &ARef{Array: "rec", Subs: []IntExpr{&ILin{Const: -1, Terms: []ITerm{{Var: "i", Coeff: 1}}}}}, R: &VConst{Value: 0.5}},
						R: &ARef{Array: "x", Subs: []IntExpr{&IVar{Name: "i"}}}}},
			}},
		},
	}
}

func TestStreamPlanRecurrence(t *testing.T) {
	sp, err := BuildStreamPlan(recurrenceProg(50))
	if err != nil {
		t.Fatalf("BuildStreamPlan: %v", err)
	}
	if sp.SelfBack != 1 {
		t.Fatalf("SelfBack=%d, want 1", sp.SelfBack)
	}
	if sp.MaxDist != 1 {
		t.Fatalf("MaxDist=%d, want 1", sp.MaxDist)
	}
}

func TestStreamPlanRejections(t *testing.T) {
	n := int64(50)
	cases := []struct {
		name string
		mut  func(p *Program)
		want string
	}{
		{"forward self read", func(p *Program) {
			// out[i] = out[i+1] — reads ahead of the write.
			l := p.Stmts[1].(*Loop)
			l.Body[0].(*Assign).Rhs = &ARef{Array: "rec", Subs: []IntExpr{&ILin{Const: 1, Terms: []ITerm{{Var: "i", Coeff: 1}}}}}
		}, "strictly backward"},
		{"non-unit write", func(p *Program) {
			l := p.Stmts[1].(*Loop)
			l.Body[0].(*Assign).Subs = []IntExpr{&ILin{Terms: []ITerm{{Var: "i", Coeff: 2}}}}
		}, "not i+c"},
		{"backward step", func(p *Program) {
			l := p.Stmts[1].(*Loop)
			l.From, l.To, l.Step = n, 2, -1
		}, "step -1"},
		{"runtime check kept", func(p *Program) {
			l := p.Stmts[1].(*Loop)
			l.Body[0].(*Assign).Rhs.(*VBin).R.(*ARef).CheckBounds = true
		}, "runtime checks"},
		{"div guard", func(p *Program) {
			l := p.Stmts[1].(*Loop)
			l.Body = []Stmt{&If{
				Cond: &BCmpInt{Op: "==", L: &IBin{Op: '%', L: &IVar{Name: "i"}, R: &IConst{Value: 2}}, R: &IConst{Value: 0}},
				Then: l.Body,
			}}
		}, "non-affine"},
		{"accumulate", func(p *Program) {
			l := p.Stmts[1].(*Loop)
			l.Body[0].(*Assign).HasAccum = true
		}, "accumulation"},
		{"tracked bitmap", func(p *Program) {
			p.Arrays[1].TrackDefs = true
		}, "definedness bitmap"},
		{"distance beyond cap", func(p *Program) {
			l := p.Stmts[1].(*Loop)
			l.Body[0].(*Assign).Rhs.(*VBin).R.(*ARef).Subs = []IntExpr{&ILin{Const: -(StreamMaxDistance + 1), Terms: []ITerm{{Var: "i", Coeff: 1}}}}
		}, "exceeds the streaming cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := recurrenceProg(n)
			tc.mut(p)
			_, err := BuildStreamPlan(p)
			if err == nil {
				t.Fatalf("expected rejection")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestStreamPlanCrossLoopForwardRead covers the interleaving hazard: a
// loop reading the output inside a *later* loop's write range would
// observe zeros materialized but values chunked.
func TestStreamPlanCrossLoopForwardRead(t *testing.T) {
	n := int64(50)
	p := &Program{
		Name: "xl",
		Arrays: []ArrayDecl{
			{Name: "x", B: b1(1, n), Role: RoleIn},
			{Name: "xl", B: b1(1, 2*n), Role: RoleOut},
		},
		Stmts: []Stmt{
			// L1 writes [1..n] reading xl[i-1]: range [0..n-1] overlaps
			// nothing later... make it read into L2's range instead:
			// write i, read i-1 is fine; so L1 writes [n+1..2n] region
			// via offset and reads backward into L2's range [1..n],
			// which L2 (the later loop) writes.
			&Loop{Var: "i", From: n + 1, To: 2 * n, Step: 1, Body: []Stmt{
				&Assign{Array: "xl", Subs: []IntExpr{&IVar{Name: "i"}},
					Rhs: &ARef{Array: "xl", Subs: []IntExpr{&ILin{Const: -n, Terms: []ITerm{{Var: "i", Coeff: 1}}}}}},
			}},
			&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
				&Assign{Array: "xl", Subs: []IntExpr{&IVar{Name: "i"}},
					Rhs: &ARef{Array: "x", Subs: []IntExpr{&IVar{Name: "i"}}}},
			}},
		},
	}
	_, err := BuildStreamPlan(p)
	if err == nil || !strings.Contains(err.Error(), "chunked interleaving would reorder") {
		t.Fatalf("want interleaving rejection, got %v", err)
	}
	// The same reads are fine when the defining loop comes first.
	p.Stmts[0], p.Stmts[1] = p.Stmts[1], p.Stmts[0]
	if _, err := BuildStreamPlan(p); err != nil {
		t.Fatalf("legal order rejected: %v", err)
	}
}

func TestCertifyStream(t *testing.T) {
	p := recurrenceProg(40)
	sp, err := BuildStreamPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep := CertifyStream(p, sp); rep.Err() != nil || rep.CertifiedCount == 0 {
		t.Fatalf("honest plan should certify: err=%v certified=%d", rep.Err(), rep.CertifiedCount)
	}
	// Forgery 1: claim less self history than required — dropped live
	// window at runtime.
	forged := *sp
	forged.SelfBack = 0
	if rep := CertifyStream(p, &forged); rep.Err() == nil {
		t.Fatalf("under-claimed self history must falsify")
	}
	// Forgery 2: claim a wrong output range.
	forged2 := *sp
	forged2.Hi = sp.Hi + 10
	if rep := CertifyStream(p, &forged2); rep.Err() == nil {
		t.Fatalf("forged output bounds must falsify")
	}
	// Forgery 3: a plan for a program the replay rejects outright.
	bad := recurrenceProg(40)
	bad.Stmts[1].(*Loop).Body[0].(*Assign).HasAccum = true
	if rep := CertifyStream(bad, sp); rep.Err() == nil {
		t.Fatalf("plan over an unstreamable program must falsify")
	}
	// Over-claiming (larger windows than needed) is sound and
	// certifies.
	over := *sp
	over.SelfBack = sp.SelfBack + 5
	if rep := CertifyStream(p, &over); rep.Err() != nil {
		t.Fatalf("over-claimed window should certify: %v", rep.Err())
	}
}
