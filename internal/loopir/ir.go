// Package loopir defines the imperative loop-nest intermediate
// representation that the paper's scheduler targets — DO loops with an
// explicit direction, element assignments, scalar and array
// temporaries, and optional runtime checks — together with an executor
// that compiles the IR to Go closures and runs it over strict float64
// arrays.
//
// By the time a program reaches this IR, every scalar parameter has
// been folded to a constant (the analysis is performed per parameter
// binding), so loop bounds, strides and subscript coefficients are all
// concrete integers. The only runtime variables are the loop indices
// and declared float temporaries.
package loopir

import (
	"fmt"

	"arraycomp/internal/idxprop"
	"arraycomp/internal/runtime"
)

// Role says how an array participates in a compiled program.
type Role uint8

const (
	// RoleIn is an input array supplied by the caller (read-only).
	RoleIn Role = iota
	// RoleOut is the result array, allocated (or, for in-place updates,
	// aliased to an input) by the executor.
	RoleOut
	// RoleTemp is a scratch array introduced by node splitting.
	RoleTemp
	// RoleInOut is an input array updated in place and returned (the
	// single-threaded bigupd case).
	RoleInOut
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleIn:
		return "in"
	case RoleOut:
		return "out"
	case RoleTemp:
		return "temp"
	case RoleInOut:
		return "inout"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// ArrayDecl declares an array used by a program.
type ArrayDecl struct {
	Name string
	B    runtime.Bounds
	Role Role
	// TrackDefs requests a definedness bitmap for this array, used when
	// collision or empties checks could not be discharged statically.
	TrackDefs bool
}

// Program is a compiled-form imperative program: declarations plus a
// statement list.
type Program struct {
	Name    string
	Arrays  []ArrayDecl
	Scalars []string // float scalar temporaries (node splitting)
	// AccumOp names the combining function when Assign.Accumulate is
	// used ("+", "*", "max", "min", "right", "left"); source-level
	// back ends need the name, the interpreter uses the closure.
	AccumOp string
	Stmts   []Stmt
}

// Decl returns the declaration of the named array, or nil.
func (p *Program) Decl(name string) *ArrayDecl {
	for i := range p.Arrays {
		if p.Arrays[i].Name == name {
			return &p.Arrays[i]
		}
	}
	return nil
}

// --- statements ---

// Stmt is an IR statement.
type Stmt interface{ stmtNode() }

// Loop is a DO loop: Var runs From, From+Step, … while it has not
// passed To (Step may be negative — the scheduled loop direction).
type Loop struct {
	Var  string
	From int64
	To   int64
	Step int64
	// Parallel marks a loop whose instances carry no dependences and
	// may execute concurrently (the paper's section 10 extension).
	// The executor shards the iteration space across workers when the
	// trip count warrants it; the code generator only sets this when
	// the body touches no shared mutable state besides disjoint array
	// elements.
	Parallel bool
	// Doacross marks a loop that carries dependences but whose pass
	// direction is consistent with them: the optimizer may still find a
	// doacross schedule (wavefront bands over 2-D nests, residue-class
	// chains for 1-D constant-distance recurrences) after verifying the
	// concrete dependence distances. The flag alone never changes
	// execution — only a Par schedule attached by the optimizer does.
	Doacross bool
	// Par is the concrete parallel schedule chosen by the optimizer's
	// planning pass. It is only ever set after the distance-vector
	// legality analysis and the trip/work cost model both pass; the
	// executor and the Go emitter consume it. Nil means sequential
	// execution (or, for Parallel loops compiled without the optimizer,
	// the legacy sharding gate).
	Par *ParSchedule
	// Inds are induction registers introduced by the optimizer's
	// strength-reduction pass: each is set to Init at loop entry and
	// advanced by Step after every iteration, incrementally maintaining
	// the row-major offset of the affine accesses that reference it
	// (via Assign.Off / ARef.Off).
	Inds []Ind
	// Sten is the stencil recognizer's annotation (see stencil.go):
	// fixed-offset neighborhood shape, footprint per dimension, and —
	// for loops produced by guard splitting — the replay record that
	// certification checks (original range, resolved guard). Nil for
	// loops the recognizer did not match.
	Sten *StencilInfo
	Body []Stmt
}

// StencilInfo annotates a loop the stencil recognizer matched: every
// array access in the (inner) body sits at a fixed constant offset
// from the write position, so the nest has a static footprint (halo).
// The tile planner derives halo-fed tile sizes from it, the
// interpreter and gogen emit specialized interior kernels for it, and
// the schedule dump renders it as `[stencil KxK interior]`.
//
// Loops created by the guard-splitting pass additionally carry replay
// records: the clones of one split share a record ID and remember the
// original iteration range plus the guard condition that was resolved
// to a constant over each clone's subrange. Nested guards split a
// clone again, so one loop can carry several records (one per split it
// descends from). CertifySplits re-checks both facts per record group
// (exact disjoint coverage, guard constancy) independently of the pass
// that claimed them.
type StencilInfo struct {
	// Dims is the recognized nest depth (1 or 2); 0 for split clones
	// whose body did not re-match the stencil shape.
	Dims int
	// HaloI / HaloJ are the per-dimension footprints: the maximum
	// |offset| of any read relative to the write in the outer (or
	// only) and inner dimension.
	HaloI, HaloJ int64
	// Boundary marks a split-off strip that kept the guarded arm
	// (the thin region around the interior).
	Boundary bool
	// Inner marks the inner loop of an annotated 2-D nest; it shares
	// the nest's footprint but is not separately dumped or counted.
	Inner bool
	// Splits are the replay records of every guard split this loop
	// descends from, outermost first.
	Splits []SplitRecord
}

// SplitRecord is the audit trail of one guard split, attached to every
// clone the split produced (and inherited by their sub-clones).
type SplitRecord struct {
	// ID groups the clones of one split.
	ID int
	// OrigFrom / OrigTo are the split source loop's full range; the
	// clones carrying this ID must tile it exactly.
	OrigFrom, OrigTo int64
	// Guard is the condition the splitter resolved over the clone's
	// range, and GuardVal the constant value it proved there.
	Guard    BExpr
	GuardVal bool
}

// String renders the dump form: "stencil 1x1 interior",
// "stencil 2 boundary", or plain "stencil interior" for split clones
// without a recognized footprint.
func (s *StencilInfo) String() string {
	part := "interior"
	if s.Boundary {
		part = "boundary"
	}
	switch s.Dims {
	case 2:
		return fmt.Sprintf("stencil %dx%d %s", s.HaloI, s.HaloJ, part)
	case 1:
		return fmt.Sprintf("stencil %d %s", s.HaloI, part)
	}
	return "stencil " + part
}

// ParKind selects a parallel execution shape.
type ParKind uint8

const (
	// ParShard splits a dependence-free loop into contiguous chunks,
	// one per worker.
	ParShard ParKind = iota + 1
	// ParTile decomposes a dependence-free 2-D nest into TileI×TileJ
	// cache tiles executed block-cyclically across workers with no
	// synchronization.
	ParTile
	// ParWavefront executes the TileI×TileJ tiles of a 2-D nest whose
	// carried distance vectors are all component-wise non-negative
	// along anti-diagonals: tiles on one diagonal run concurrently,
	// diagonals are separated by barriers.
	ParWavefront
	// ParChains splits a 1-D loop whose carried distances share a gcd
	// g ≥ 2 into g independent residue-class chains.
	ParChains
	// ParMonoShard shards a 1-D commutative-accumulation loop whose
	// write subscript routes through a runtime-verified monotone
	// non-decreasing index array: chunk boundaries are aligned so that
	// equal subscript values never straddle workers (each worker
	// advances its start past any run continuing the previous chunk's
	// last value). Workers then own disjoint element sets and each
	// element's contributions keep their sequential order, so the
	// result is bitwise identical to sequential execution.
	ParMonoShard
)

// String names the schedule kind.
func (k ParKind) String() string {
	switch k {
	case ParShard:
		return "shard"
	case ParTile:
		return "tile"
	case ParWavefront:
		return "wavefront"
	case ParChains:
		return "chains"
	case ParMonoShard:
		return "mono-shard"
	}
	return fmt.Sprintf("ParKind(%d)", uint8(k))
}

// ParSchedule is the optimizer-chosen parallel schedule of a loop (see
// Loop.Par). For ParTile and ParWavefront the loop must be a 2-D nest:
// the annotated outer loop, optional prefix statements (executed once
// per outer iteration, before the row's first tile column), and the
// inner loop as the last body statement.
type ParSchedule struct {
	Kind ParKind
	// TileI, TileJ are the cache tile extents (ParTile, ParWavefront).
	TileI, TileJ int64
	// Chains is the residue-class count g (ParChains).
	Chains int64
	// AlignOn is the write-subscript expression of a ParMonoShard loop,
	// evaluated at a candidate boundary iteration to decide whether the
	// boundary splits a run of equal subscript values. It references
	// the loop variable only.
	AlignOn IntExpr
}

// String renders the schedule for dumps.
func (s *ParSchedule) String() string {
	switch s.Kind {
	case ParTile, ParWavefront:
		return fmt.Sprintf("%s %dx%d", s.Kind, s.TileI, s.TileJ)
	case ParChains:
		return fmt.Sprintf("%s %d", s.Kind, s.Chains)
	case ParMonoShard:
		return fmt.Sprintf("%s(%s)", s.Kind, IntExprString(s.AlignOn))
	}
	return s.Kind.String()
}

// Ind is one induction register of a strength-reduced loop. Init is an
// integer expression over the enclosing loop variables (the "row base"
// for inner loops of multi-dimensional nests), evaluated once per loop
// entry; Step is the constant per-iteration advance.
type Ind struct {
	Name string
	Init IntExpr
	Step int64
}

// If executes Then or Else depending on Cond.
type If struct {
	Cond BExpr
	Then []Stmt
	Else []Stmt
}

// Assign stores Rhs into Array at the subscript tuple.
type Assign struct {
	Array string
	Subs  []IntExpr
	Rhs   VExpr
	// CheckBounds compiles a range check (out of range ⇒ runtime error).
	// When false the compiler proved the subscripts in range and the
	// store goes straight to the linear offset.
	CheckBounds bool
	// CheckCollision compiles a definedness test against the array's
	// bitmap (second write ⇒ runtime error). Requires TrackDefs.
	CheckCollision bool
	// Accumulate, when non-nil, folds Rhs into the element with this
	// combining function instead of storing it (accumArray).
	Accumulate runtime.CombineFunc
	// HasAccum mirrors Accumulate != nil in plain data: gob drops
	// func-typed fields, so serialized programs use the marker plus
	// Program.AccumOp to re-derive the closure (RebindAccum).
	HasAccum bool
	// Off, when non-nil, is the strength-reduced row-major offset of the
	// store — an affine form over induction registers (Loop.Inds) that
	// replaces the per-element subscript flattening. Only ever set by
	// the optimizer on accesses with CheckBounds == false; Subs are
	// retained for diagnostics and dependence reasoning.
	Off IntExpr
	// NoTrack suppresses the definedness-bitmap update for a store to a
	// TrackDefs array. Set only on the claim-verified fast branch of a
	// dual lowering, whose claims prove the writes collision-free and
	// complete; the sibling checked branch keeps tracking and owns the
	// CheckFull sweep.
	NoTrack bool
}

// SetScalar assigns a float scalar temporary.
type SetScalar struct {
	Name string
	Rhs  VExpr
}

// CopyArray copies Src's contents into Dst (bounds must match).
type CopyArray struct {
	Dst, Src string
}

// CheckFull verifies that every element of the array's definedness
// bitmap is set (the runtime empties check). Requires TrackDefs.
type CheckFull struct {
	Array string
}

// Fail raises a runtime error unconditionally; compiled for writes the
// exact test proved to always collide.
type Fail struct {
	Msg string
}

// Fill sets every element of the array to a constant (accumArray
// initialization).
type Fill struct {
	Array string
	Value float64
}

func (*Loop) stmtNode()      {}
func (*If) stmtNode()        {}
func (*Assign) stmtNode()    {}
func (*SetScalar) stmtNode() {}
func (*CopyArray) stmtNode() {}
func (*CheckFull) stmtNode() {}
func (*Fail) stmtNode()      {}
func (*Fill) stmtNode()      {}

// --- integer expressions (subscripts, guard operands) ---

// IntExpr is an integer expression over loop variables.
type IntExpr interface{ intExprNode() }

// ILin is the affine fast path: Const + Σ Coeff·var.
type ILin struct {
	Const int64
	Terms []ITerm
}

// ITerm is one linear term.
type ITerm struct {
	Var   string
	Coeff int64
}

// IVar reads a loop variable.
type IVar struct{ Name string }

// IConst is an integer literal.
type IConst struct{ Value int64 }

// IBin is a non-affine integer operation (div, mod, or arithmetic that
// did not fold).
type IBin struct {
	Op   byte // '+', '-', '*', '/', '%'
	L, R IntExpr
}

// IIdx reads an element of an index array in integer position — the
// subscripted-subscript form `a!(idx!(i))`. The element must hold an
// integral value; a fractional element is a runtime error. CheckBounds
// range-checks the inner subscripts (elided on the claim-verified fast
// path, where a range claim on the array already covers them).
type IIdx struct {
	Array       string
	Subs        []IntExpr
	CheckBounds bool
}

func (*ILin) intExprNode()   {}
func (*IVar) intExprNode()   {}
func (*IConst) intExprNode() {}
func (*IBin) intExprNode()   {}
func (*IIdx) intExprNode()   {}

// --- float value expressions ---

// VExpr is a float64-valued expression.
type VExpr interface{ vexprNode() }

// VConst is a float literal.
type VConst struct{ Value float64 }

// VFromInt converts an integer expression to float (e.g. `i*i` as an
// element value).
type VFromInt struct{ X IntExpr }

// VScalar reads a float scalar temporary.
type VScalar struct{ Name string }

// ARef reads Array at the subscript tuple. CheckDefined additionally
// consults the array's definedness bitmap (reading an empty is an
// error); CheckBounds range-checks.
type ARef struct {
	Array        string
	Subs         []IntExpr
	CheckBounds  bool
	CheckDefined bool
	// Off mirrors Assign.Off: the strength-reduced linear offset of the
	// read, set by the optimizer only when CheckBounds is false.
	Off IntExpr
}

// VBin is a float binary operation.
type VBin struct {
	Op   byte // '+', '-', '*', '/'
	L, R VExpr
}

// VNeg negates.
type VNeg struct{ X VExpr }

// VCall invokes a builtin scalar function (abs, min, max, sqrt, exp,
// log, sin, cos, pow).
type VCall struct {
	Fn   string
	Args []VExpr
}

// VCond selects between two values.
type VCond struct {
	C    BExpr
	T, E VExpr
}

func (*VConst) vexprNode()   {}
func (*VFromInt) vexprNode() {}
func (*VScalar) vexprNode()  {}
func (*ARef) vexprNode()     {}
func (*VBin) vexprNode()     {}
func (*VNeg) vexprNode()     {}
func (*VCall) vexprNode()    {}
func (*VCond) vexprNode()    {}

// --- boolean expressions ---

// BExpr is a boolean expression (guards, conditionals).
type BExpr interface{ bexprNode() }

// BCmpInt compares two integer expressions.
type BCmpInt struct {
	Op   string // "==", "/=", "<", "<=", ">", ">="
	L, R IntExpr
}

// BCmpFloat compares two float expressions.
type BCmpFloat struct {
	Op   string
	L, R VExpr
}

// BAnd, BOr, BNot combine booleans.
type BAnd struct{ L, R BExpr }

// BOr is disjunction.
type BOr struct{ L, R BExpr }

// BNot is negation.
type BNot struct{ X BExpr }

// BConst is a boolean literal (folded guards).
type BConst struct{ Value bool }

// BVerify is the runtime index-array property verifier: it runs one
// O(n) pass over the named input array checking every claim
// (integrality, range, monotonicity, injectivity) and yields true only
// when all hold. It guards the claim-conditional fast branch of a dual
// lowering — `If{Cond: BVerify, Then: parallel unchecked, Else:
// sequential checked}` — so a violating index array can only ever
// route execution to the safe path. The executor reports each verdict
// through the exec's verify hook for metrics.
type BVerify struct {
	Array  string
	Claims idxprop.Claims
}

func (*BCmpInt) bexprNode()   {}
func (*BCmpFloat) bexprNode() {}
func (*BAnd) bexprNode()      {}
func (*BOr) bexprNode()       {}
func (*BNot) bexprNode()      {}
func (*BConst) bexprNode()    {}
func (*BVerify) bexprNode()   {}
