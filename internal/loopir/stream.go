// Stream legality analysis: decides whether a compiled loop-IR
// program can execute as one stage of a bounded-memory streaming
// pipeline, and if so derives the window geometry (how much history
// and lookahead each read needs) from the same constant subscript
// offsets the dependence planner already reasons about.
//
// The materialized executor holds every array whole: O(n) per
// definition. But when every subscript in a program is the loop
// variable plus a constant, each element's inputs live within a fixed
// distance d of the write position — the carried dependence distances
// of plan.go, seen from the memory side. Such a program can run over a
// sliding O(d) window per array instead: the streaming engine
// (internal/stream) feeds chunks through producer/consumer stages and
// only ever keeps `back` history plus `fwd` lookahead live.
//
// The legality rule is deliberately a whitelist. A program streams
// only when the analysis can *prove* that executing it chunk by chunk,
// interleaved with its producers and consumers, stores bit-identical
// values in bit-identical order:
//
//   - rank-1 arrays only, one RoleOut output, no temps/in-place/bitmaps;
//   - top level is SetScalar and forward unit-step Loops, nothing else;
//   - loop bodies are Assign/If/SetScalar over check-free expressions
//     (no IBin, no IIdx, no BVerify — anything that can fail or roam);
//   - every write subscript is i+c with coefficient 1, one write
//     offset per loop;
//   - reads of the output itself are strictly backward (read position
//     < write position) and never land in a later loop's write range —
//     the materialized order runs loop k's whole range before loop
//     k+1, so a forward read across loops would observe a zero the
//     chunked interleaving has already overwritten;
//   - reads of other arrays are either at constant offset from the
//     write position (windowable: the engine gives them an O(d)
//     window) or arbitrary affine forms (the engine must then hold
//     that array fully resident — fine for caller inputs, fatal for
//     upstream stage outputs, which internal/stream rejects);
//   - scalars read inside a loop body are either set only at top level
//     (chunk-invariant: their defining statement re-runs per chunk with
//     the same operands) or set unconditionally earlier in the same
//     body (per-iteration temporaries from node splitting).
//
// Everything else — accumArray, bigupd, guards over div/mod, tracked
// definedness, subscripted subscripts — falls back to the materialized
// path; BuildStreamPlan's error says why.
//
// The optimizer's strength-reduction artifacts (Assign.Off / ARef.Off,
// Loop.Inds) are ignored: Subs are retained precisely so dependence
// reasoning can ignore offsets, and the streaming evaluator interprets
// Subs directly. Parallel schedules (Loop.Par) are likewise ignored —
// a stream stage runs sequentially; the pipeline's parallelism is
// between stages.
package loopir

import (
	"fmt"
	"sort"
	"strings"

	"arraycomp/internal/certify"
)

// StreamMaxDistance caps the window distance d a plan may demand.
// Distances beyond this bound would make "O(d) window" a lie in
// practice (the window would rival the array), so such programs fall
// back to the materialized path.
const StreamMaxDistance = 4096

// StreamWindow is the window requirement of one read array.
type StreamWindow struct {
	// Array is the read array's name.
	Array string
	// Back and Fwd bound the constant read offsets relative to the
	// write position: a read at write+δ contributes -δ to Back (δ<0)
	// or δ to Fwd (δ>0). Only meaningful when Windowable.
	Back, Fwd int64
	// Windowable reports that every read of this array sits at a
	// constant offset from the write position, so an O(Back+Fwd)
	// window suffices. Non-windowable arrays (constant positions,
	// non-unit coefficients) must stay fully resident.
	Windowable bool
}

// StreamPlan is the window geometry of one streamable program: the
// output identity and bounds, how much of its own output history the
// stage retains, and the per-array read windows. internal/stream
// composes the per-definition plans of a pipeline into chunked
// producer/consumer stages.
type StreamPlan struct {
	// Out is the RoleOut array.
	Out string
	// Lo, Hi are the output bounds (rank 1).
	Lo, Hi int64
	// SelfBack is the history of the stage's own output that reads
	// reach back into (0 = no self reads).
	SelfBack int64
	// Reads lists the window requirement per distinct read array,
	// sorted by name.
	Reads []StreamWindow
	// MaxDist is the largest window distance anywhere in the plan —
	// the constant d of the bounded-distance argument.
	MaxDist int64
	// Loops counts the top-level loops (one comprehension arm each).
	Loops int
}

// Read returns the window of the named array, or nil.
func (sp *StreamPlan) Read(name string) *StreamWindow {
	for i := range sp.Reads {
		if sp.Reads[i].Array == name {
			return &sp.Reads[i]
		}
	}
	return nil
}

// String renders the plan for compile notes.
func (sp *StreamPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "out %s[%d..%d] d=%d", sp.Out, sp.Lo, sp.Hi, sp.MaxDist)
	if sp.SelfBack > 0 {
		fmt.Fprintf(&b, " self-back=%d", sp.SelfBack)
	}
	for _, w := range sp.Reads {
		if w.Windowable {
			fmt.Fprintf(&b, " %s[-%d..+%d]", w.Array, w.Back, w.Fwd)
		} else {
			fmt.Fprintf(&b, " %s[resident]", w.Array)
		}
	}
	return b.String()
}

// streamChecker carries the walk state of one legality analysis.
type streamChecker struct {
	prog *Program
	out  string
	// windows accumulates per-array requirements.
	windows map[string]*StreamWindow
	// topScalars are scalars assigned at top level (chunk-invariant).
	topScalars map[string]bool
	// bodySet are scalars assigned inside any loop body.
	bodySet map[string]bool
	// selfBack is the deepest backward self read.
	selfBack int64
	// selfReads records own-output read ranges per loop index for the
	// cross-loop forward-read check.
	selfReads []selfRead
	// loops records each top-level loop's write range.
	loops []streamLoopRange
}

type selfRead struct {
	loopIdx  int
	from, to int64 // read positions over the loop's range
}

type streamLoopRange struct {
	from, to int64 // write positions (From+cw .. To+cw)
}

// BuildStreamPlan decides stream legality for one compiled program and
// derives its window geometry. A nil error means the program may
// execute as a streaming stage with bit-identical results; otherwise
// the error names the first disqualifying construct (the compile note
// for the materialized fallback).
func BuildStreamPlan(p *Program) (*StreamPlan, error) {
	c := &streamChecker{
		prog:       p,
		windows:    map[string]*StreamWindow{},
		topScalars: map[string]bool{},
		bodySet:    map[string]bool{},
	}
	// Array census: one rank-1 output, read-only rank-1 inputs, no
	// temps, no in-place aliasing, no definedness bitmaps.
	for i := range p.Arrays {
		d := &p.Arrays[i]
		if d.TrackDefs {
			return nil, fmt.Errorf("array %s carries a definedness bitmap", d.Name)
		}
		if d.B.Rank() != 1 {
			return nil, fmt.Errorf("array %s has rank %d; streaming handles rank 1", d.Name, d.B.Rank())
		}
		switch d.Role {
		case RoleOut:
			if c.out != "" {
				return nil, fmt.Errorf("two output arrays (%s, %s)", c.out, d.Name)
			}
			c.out = d.Name
		case RoleIn:
			// fine
		default:
			return nil, fmt.Errorf("array %s has role %s; streaming handles in/out only", d.Name, d.Role)
		}
	}
	if c.out == "" {
		return nil, fmt.Errorf("no output array")
	}
	// Pre-scan for body scalar writes (the top-level walk needs the
	// full set before judging body reads).
	var scanBody func(stmts []Stmt)
	scanBody = func(stmts []Stmt) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *SetScalar:
				c.bodySet[x.Name] = true
			case *If:
				scanBody(x.Then)
				scanBody(x.Else)
			case *Loop:
				scanBody(x.Body)
			}
		}
	}
	for _, s := range p.Stmts {
		if l, ok := s.(*Loop); ok {
			scanBody(l.Body)
		}
	}
	// Top level: SetScalar, Loop, and constant-subscript Assign (the
	// lowered form of a base case like [ 1 := a!1 ]).
	for _, s := range p.Stmts {
		switch x := s.(type) {
		case *SetScalar:
			if err := c.topValue(x.Rhs); err != nil {
				return nil, fmt.Errorf("top-level scalar %s: %w", x.Name, err)
			}
			c.topScalars[x.Name] = true
		case *Loop:
			if err := c.loop(x); err != nil {
				return nil, err
			}
		case *Assign:
			pl, err := pointLoop(x)
			if err != nil {
				return nil, fmt.Errorf("top-level assign to %s: %w", x.Array, err)
			}
			if err := c.loop(pl); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("top-level %T is not streamable", s)
		}
	}
	if len(c.loops) == 0 {
		return nil, fmt.Errorf("no loops (nothing to chunk)")
	}
	// Cross-loop hazard: a read of the output in loop j whose read
	// range enters a *later* loop's write range observes zeros in the
	// materialized order (loop j runs to completion first) but values
	// under chunked interleaving (the later loop has already written
	// earlier chunks).
	for _, sr := range c.selfReads {
		for k := sr.loopIdx + 1; k < len(c.loops); k++ {
			lr := c.loops[k]
			if sr.from <= lr.to && lr.from <= sr.to {
				return nil, fmt.Errorf("loop %d reads %s[%d..%d], inside loop %d's write range [%d..%d]: chunked interleaving would reorder the observation", sr.loopIdx+1, c.out, sr.from, sr.to, k+1, lr.from, lr.to)
			}
		}
	}
	outDecl := p.Decl(c.out)
	sp := &StreamPlan{
		Out:      c.out,
		Lo:       outDecl.B.Lo[0],
		Hi:       outDecl.B.Hi[0],
		SelfBack: c.selfBack,
		MaxDist:  c.selfBack,
		Loops:    len(c.loops),
	}
	names := make([]string, 0, len(c.windows))
	for n := range c.windows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := c.windows[n]
		sp.Reads = append(sp.Reads, *w)
		if w.Windowable {
			if w.Back > sp.MaxDist {
				sp.MaxDist = w.Back
			}
			if w.Fwd > sp.MaxDist {
				sp.MaxDist = w.Fwd
			}
		}
	}
	if sp.MaxDist > StreamMaxDistance {
		return nil, fmt.Errorf("window distance %d exceeds the streaming cap %d", sp.MaxDist, StreamMaxDistance)
	}
	return sp, nil
}

// loop checks one top-level loop and accumulates its window demands.
func (c *streamChecker) loop(l *Loop) error {
	if l.Step != 1 {
		return fmt.Errorf("loop over %s has step %d; streaming needs forward unit steps", l.Var, l.Step)
	}
	// Find the loop's single write offset first: read legality is
	// judged relative to the write position.
	cw, nWrites, err := c.writeOffset(l.Body, l.Var)
	if err != nil {
		return err
	}
	if nWrites == 0 {
		return fmt.Errorf("loop over %s writes nothing", l.Var)
	}
	loopIdx := len(c.loops)
	c.loops = append(c.loops, streamLoopRange{from: l.From + cw, to: l.To + cw})
	// defined tracks per-iteration scalar temporaries assigned
	// unconditionally before their first read (walk order: If branches
	// do not count as unconditional).
	defined := map[string]bool{}
	var stmts func(body []Stmt, unconditional bool) error
	stmts = func(body []Stmt, unconditional bool) error {
		for _, s := range body {
			switch x := s.(type) {
			case *Assign:
				if err := c.value(x.Rhs, l, cw, loopIdx, defined); err != nil {
					return err
				}
				// Write subscript shape was validated by writeOffset.
			case *SetScalar:
				if err := c.value(x.Rhs, l, cw, loopIdx, defined); err != nil {
					return err
				}
				if unconditional {
					defined[x.Name] = true
				}
			case *If:
				if err := c.boolean(x.Cond, l, cw, loopIdx, defined); err != nil {
					return err
				}
				if err := stmts(x.Then, false); err != nil {
					return err
				}
				if err := stmts(x.Else, false); err != nil {
					return err
				}
			default:
				return fmt.Errorf("loop over %s contains %T; streaming bodies are assign/if/scalar only", l.Var, s)
			}
		}
		return nil
	}
	return stmts(l.Body, true)
}

// writeOffset validates every Assign in the body and returns the
// loop's single write offset cw (write position = var + cw).
func (c *streamChecker) writeOffset(body []Stmt, v string) (cw int64, n int, err error) {
	var walk func(stmts []Stmt) error
	walk = func(stmts []Stmt) error {
		for _, s := range stmts {
			switch x := s.(type) {
			case *Assign:
				if x.Array != c.out {
					return fmt.Errorf("write to %s; streaming writes the output only", x.Array)
				}
				if x.CheckBounds || x.CheckCollision || x.HasAccum || x.Accumulate != nil {
					return fmt.Errorf("write to %s keeps runtime checks or accumulation", x.Array)
				}
				if len(x.Subs) != 1 {
					return fmt.Errorf("write to %s has %d subscripts", x.Array, len(x.Subs))
				}
				off, ok := unitOffset(x.Subs[0], v)
				if !ok {
					return fmt.Errorf("write subscript %s is not %s+c", IntExprString(x.Subs[0]), v)
				}
				if n == 0 {
					cw = off
				} else if off != cw {
					return fmt.Errorf("two write offsets in one loop (%d, %d)", cw, off)
				}
				n++
			case *If:
				if err := walk(x.Then); err != nil {
					return err
				}
				if err := walk(x.Else); err != nil {
					return err
				}
			case *Loop:
				return fmt.Errorf("nested loop over %s; streaming handles rank-1 nests", x.Var)
			}
		}
		return nil
	}
	err = walk(body)
	return cw, n, err
}

// unitOffset matches var+c with coefficient 1, returning c.
func unitOffset(e IntExpr, v string) (int64, bool) {
	switch x := e.(type) {
	case *IVar:
		if x.Name == v {
			return 0, true
		}
	case *ILin:
		if len(x.Terms) == 1 && x.Terms[0].Var == v && x.Terms[0].Coeff == 1 {
			return x.Const, true
		}
	}
	return 0, false
}

// streamConstInt matches a constant integer expression.
func streamConstInt(e IntExpr) (int64, bool) {
	switch x := e.(type) {
	case *IConst:
		return x.Value, true
	case *ILin:
		if len(x.Terms) == 0 {
			return x.Const, true
		}
	}
	return 0, false
}

// pointVar is the synthetic loop variable of rewritten point assigns.
// The middle dot cannot appear in source identifiers.
const pointVar = "·point·"

// pointLoop rewrites a top-level constant-subscript Assign into an
// equivalent single-trip Loop so the window math — read offsets
// relative to the write position — applies uniformly. At iteration
// i = w a constant subscript k equals i + (k-w), so every constant
// ARef subscript becomes an affine form over the synthetic variable.
// Expression trees are copied on the paths that change: the original
// IR is shared with the materialized plan and must not be mutated.
func pointLoop(a *Assign) (*Loop, error) {
	if len(a.Subs) != 1 {
		return nil, fmt.Errorf("write has %d subscripts", len(a.Subs))
	}
	w, ok := streamConstInt(a.Subs[0])
	if !ok {
		return nil, fmt.Errorf("write subscript %s is not constant", IntExprString(a.Subs[0]))
	}
	rhs, err := pointValue(a.Rhs, w)
	if err != nil {
		return nil, err
	}
	na := &Assign{
		Array: a.Array, Subs: []IntExpr{&IVar{Name: pointVar}}, Rhs: rhs,
		CheckBounds: a.CheckBounds, CheckCollision: a.CheckCollision,
		Accumulate: a.Accumulate, HasAccum: a.HasAccum,
	}
	return &Loop{Var: pointVar, From: w, To: w, Step: 1, Body: []Stmt{na}}, nil
}

// pointValue copies a value expression, rewriting every ARef subscript
// from its constant position k to the affine form pointVar+(k-w).
func pointValue(e VExpr, w int64) (VExpr, error) {
	switch x := e.(type) {
	case *VConst, *VScalar, *VFromInt:
		return e, nil
	case *ARef:
		if len(x.Subs) != 1 {
			return nil, fmt.Errorf("read of %s has %d subscripts", x.Array, len(x.Subs))
		}
		k, ok := streamConstInt(x.Subs[0])
		if !ok {
			return nil, fmt.Errorf("read of %s at non-constant position %s", x.Array, IntExprString(x.Subs[0]))
		}
		return &ARef{
			Array:       x.Array,
			Subs:        []IntExpr{&ILin{Const: k - w, Terms: []ITerm{{Var: pointVar, Coeff: 1}}}},
			CheckBounds: x.CheckBounds, CheckDefined: x.CheckDefined,
		}, nil
	case *VBin:
		l, err := pointValue(x.L, w)
		if err != nil {
			return nil, err
		}
		r, err := pointValue(x.R, w)
		if err != nil {
			return nil, err
		}
		return &VBin{Op: x.Op, L: l, R: r}, nil
	case *VNeg:
		in, err := pointValue(x.X, w)
		if err != nil {
			return nil, err
		}
		return &VNeg{X: in}, nil
	case *VCall:
		args := make([]VExpr, len(x.Args))
		for i, a := range x.Args {
			na, err := pointValue(a, w)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &VCall{Fn: x.Fn, Args: args}, nil
	case *VCond:
		cond, err := pointBool(x.C, w)
		if err != nil {
			return nil, err
		}
		t, err := pointValue(x.T, w)
		if err != nil {
			return nil, err
		}
		f, err := pointValue(x.E, w)
		if err != nil {
			return nil, err
		}
		return &VCond{C: cond, T: t, E: f}, nil
	}
	return nil, fmt.Errorf("value expression %T in a point assign", e)
}

// pointBool copies a boolean expression under the same rewrite.
func pointBool(b BExpr, w int64) (BExpr, error) {
	switch x := b.(type) {
	case *BConst, *BCmpInt:
		// Integer comparisons at top level are over constants; the
		// checker's affine walk validates them as-is.
		return b, nil
	case *BCmpFloat:
		l, err := pointValue(x.L, w)
		if err != nil {
			return nil, err
		}
		r, err := pointValue(x.R, w)
		if err != nil {
			return nil, err
		}
		return &BCmpFloat{Op: x.Op, L: l, R: r}, nil
	case *BAnd:
		l, err := pointBool(x.L, w)
		if err != nil {
			return nil, err
		}
		r, err := pointBool(x.R, w)
		if err != nil {
			return nil, err
		}
		return &BAnd{L: l, R: r}, nil
	case *BOr:
		l, err := pointBool(x.L, w)
		if err != nil {
			return nil, err
		}
		r, err := pointBool(x.R, w)
		if err != nil {
			return nil, err
		}
		return &BOr{L: l, R: r}, nil
	case *BNot:
		in, err := pointBool(x.X, w)
		if err != nil {
			return nil, err
		}
		return &BNot{X: in}, nil
	}
	return nil, fmt.Errorf("boolean expression %T in a point assign", b)
}

// integer checks an integer expression inside a loop (guard operands,
// VFromInt bodies): affine over the loop variable only. Division,
// modulo, and subscripted subscripts can fail at runtime and are
// rejected wholesale.
func (c *streamChecker) integer(e IntExpr, l *Loop) error {
	switch x := e.(type) {
	case *IConst:
		return nil
	case *IVar:
		if x.Name != l.Var {
			return fmt.Errorf("integer expression reads %s outside the loop variable %s", x.Name, l.Var)
		}
		return nil
	case *ILin:
		for _, t := range x.Terms {
			if t.Var != l.Var {
				return fmt.Errorf("affine term over %s outside the loop variable %s", t.Var, l.Var)
			}
		}
		return nil
	case *IBin:
		return fmt.Errorf("non-affine integer op %q (can fail at runtime)", string(x.Op))
	case *IIdx:
		return fmt.Errorf("subscripted subscript through %s", x.Array)
	}
	return fmt.Errorf("unknown integer expression %T", e)
}

// value checks a float expression inside a loop body.
func (c *streamChecker) value(e VExpr, l *Loop, cw int64, loopIdx int, defined map[string]bool) error {
	switch x := e.(type) {
	case *VConst:
		return nil
	case *VFromInt:
		return c.integer(x.X, l)
	case *VScalar:
		if c.bodySet[x.Name] && !defined[x.Name] {
			return fmt.Errorf("scalar %s is read before an unconditional set in this loop (cross-chunk carry)", x.Name)
		}
		return nil
	case *ARef:
		return c.read(x, l, cw, loopIdx)
	case *VBin:
		if err := c.value(x.L, l, cw, loopIdx, defined); err != nil {
			return err
		}
		return c.value(x.R, l, cw, loopIdx, defined)
	case *VNeg:
		return c.value(x.X, l, cw, loopIdx, defined)
	case *VCall:
		for _, a := range x.Args {
			if err := c.value(a, l, cw, loopIdx, defined); err != nil {
				return err
			}
		}
		return nil
	case *VCond:
		if err := c.boolean(x.C, l, cw, loopIdx, defined); err != nil {
			return err
		}
		if err := c.value(x.T, l, cw, loopIdx, defined); err != nil {
			return err
		}
		return c.value(x.E, l, cw, loopIdx, defined)
	}
	return fmt.Errorf("unknown value expression %T", e)
}

// read checks one array read and accumulates its window demand.
func (c *streamChecker) read(r *ARef, l *Loop, cw int64, loopIdx int) error {
	if r.CheckBounds || r.CheckDefined {
		return fmt.Errorf("read of %s keeps runtime checks", r.Array)
	}
	if len(r.Subs) != 1 {
		return fmt.Errorf("read of %s has %d subscripts", r.Array, len(r.Subs))
	}
	if r.Array == c.out {
		cr, ok := unitOffset(r.Subs[0], l.Var)
		if !ok {
			return fmt.Errorf("self read %s!%s is not %s+c", r.Array, IntExprString(r.Subs[0]), l.Var)
		}
		if cr >= cw {
			return fmt.Errorf("self read at offset %+d is not strictly backward of the write offset %+d", cr, cw)
		}
		if d := cw - cr; d > c.selfBack {
			c.selfBack = d
		}
		c.selfReads = append(c.selfReads, selfRead{loopIdx: loopIdx, from: l.From + cr, to: l.To + cr})
		return nil
	}
	w := c.windows[r.Array]
	if w == nil {
		w = &StreamWindow{Array: r.Array, Windowable: true}
		c.windows[r.Array] = w
	}
	if cr, ok := unitOffset(r.Subs[0], l.Var); ok {
		d := cr - cw
		if d < 0 && -d > w.Back {
			w.Back = -d
		}
		if d > 0 && d > w.Fwd {
			w.Fwd = d
		}
		return nil
	}
	// Constant positions and non-unit coefficients still have to be
	// valid affine forms; they just force residency.
	if err := c.integer(r.Subs[0], l); err != nil {
		return fmt.Errorf("read of %s: %w", r.Array, err)
	}
	w.Windowable = false
	return nil
}

// boolean checks a guard/conditional expression inside a loop body.
func (c *streamChecker) boolean(b BExpr, l *Loop, cw int64, loopIdx int, defined map[string]bool) error {
	switch x := b.(type) {
	case *BConst:
		return nil
	case *BCmpInt:
		if err := c.integer(x.L, l); err != nil {
			return err
		}
		return c.integer(x.R, l)
	case *BCmpFloat:
		if err := c.value(x.L, l, cw, loopIdx, defined); err != nil {
			return err
		}
		return c.value(x.R, l, cw, loopIdx, defined)
	case *BAnd:
		if err := c.boolean(x.L, l, cw, loopIdx, defined); err != nil {
			return err
		}
		return c.boolean(x.R, l, cw, loopIdx, defined)
	case *BOr:
		if err := c.boolean(x.L, l, cw, loopIdx, defined); err != nil {
			return err
		}
		return c.boolean(x.R, l, cw, loopIdx, defined)
	case *BNot:
		return c.boolean(x.X, l, cw, loopIdx, defined)
	case *BVerify:
		return fmt.Errorf("runtime claim verifier over %s", x.Array)
	}
	return fmt.Errorf("unknown boolean expression %T", b)
}

// topValue checks a top-level SetScalar right-hand side: constants,
// already-set scalars, math over them, and constant-position reads of
// input arrays. No loop variable exists at top level, and reads of the
// output are rejected — a chunked stage re-evaluates these statements
// per chunk, so they must be chunk-invariant.
func (c *streamChecker) topValue(e VExpr) error {
	switch x := e.(type) {
	case *VConst:
		return nil
	case *VScalar:
		if c.bodySet[x.Name] {
			return fmt.Errorf("reads scalar %s set inside a loop body", x.Name)
		}
		return nil
	case *VFromInt:
		if _, ok := x.X.(*IConst); ok {
			return nil
		}
		return fmt.Errorf("non-constant integer at top level")
	case *ARef:
		if x.Array == c.out {
			return fmt.Errorf("reads the output %s", x.Array)
		}
		if x.CheckBounds || x.CheckDefined {
			return fmt.Errorf("read of %s keeps runtime checks", x.Array)
		}
		if len(x.Subs) != 1 {
			return fmt.Errorf("read of %s has %d subscripts", x.Array, len(x.Subs))
		}
		if _, ok := x.Subs[0].(*IConst); !ok {
			return fmt.Errorf("read of %s at a non-constant position", x.Array)
		}
		w := c.windows[x.Array]
		if w == nil {
			w = &StreamWindow{Array: x.Array, Windowable: true}
			c.windows[x.Array] = w
		}
		w.Windowable = false
		return nil
	case *VBin:
		if err := c.topValue(x.L); err != nil {
			return err
		}
		return c.topValue(x.R)
	case *VNeg:
		return c.topValue(x.X)
	case *VCall:
		for _, a := range x.Args {
			if err := c.topValue(a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("%T not allowed at top level", e)
}

// CertifyStream replays the window-legality analysis independently of
// the plan being certified and cross-checks the claimed geometry. The
// soundness direction matters: a plan claiming a *smaller* window than
// the replay derives would drop live history at runtime, so any
// under-claim falsifies; claims at or above the derived geometry are
// certified. A plan for a program the replay rejects outright is a
// forgery.
func CertifyStream(p *Program, claimed *StreamPlan) *certify.Report {
	rep := certify.NewReport()
	cert := certify.Certificate{Layer: "stream", Exhaustive: true}
	actual, err := BuildStreamPlan(p)
	if err != nil {
		cert.Claim = fmt.Sprintf("%s streams with %s", p.Name, claimed)
		cert.Status = certify.Falsified
		cert.Detail = fmt.Sprintf("replay rejects the program: %v", err)
		rep.Record(cert)
		return rep
	}
	cert.Claim = fmt.Sprintf("%s streams with window d=%d", p.Name, actual.MaxDist)
	fail := func(detail string) *certify.Report {
		cert.Status = certify.Falsified
		cert.Detail = detail
		rep.Record(cert)
		return rep
	}
	if claimed.Out != actual.Out || claimed.Lo != actual.Lo || claimed.Hi != actual.Hi {
		return fail(fmt.Sprintf("output identity mismatch: claimed %s[%d..%d], replay %s[%d..%d]", claimed.Out, claimed.Lo, claimed.Hi, actual.Out, actual.Lo, actual.Hi))
	}
	if claimed.SelfBack < actual.SelfBack {
		return fail(fmt.Sprintf("claimed self history %d < required %d", claimed.SelfBack, actual.SelfBack))
	}
	for _, aw := range actual.Reads {
		cwin := claimed.Read(aw.Array)
		if cwin == nil {
			return fail(fmt.Sprintf("claimed plan omits read array %s", aw.Array))
		}
		if !aw.Windowable && cwin.Windowable {
			return fail(fmt.Sprintf("claimed %s windowable; replay requires residency", aw.Array))
		}
		if aw.Windowable && cwin.Windowable && (cwin.Back < aw.Back || cwin.Fwd < aw.Fwd) {
			return fail(fmt.Sprintf("claimed window %s[-%d..+%d] < required [-%d..+%d]", aw.Array, cwin.Back, cwin.Fwd, aw.Back, aw.Fwd))
		}
	}
	cert.Status = certify.Certified
	cert.Witness = []int64{actual.MaxDist, int64(actual.Loops)}
	rep.Record(cert)
	return rep
}
