package loopir

// Interpreter specialization for strength-reduced loops. Most of the
// win from strength reduction comes from the generic closure path
// itself: an offset-form access (Assign.Off / ARef.Off) compiles to a
// single register load plus constant add instead of re-evaluating the
// subscript polynomial, which is what makes stencil reads and writes
// at constant deltas cheap (see compileOffset). One shape deserves
// more: a loop whose whole body is `dst@{r1} := src@{r2}` with both
// registers advancing by one is a unit-stride row copy, and lowering
// it to builtin copy turns the per-element interpreter loop into a
// single memmove. That shape is exactly what node splitting's row
// buffering produces (Jacobi's `rowbuf[j] := a[i-1,j]` pass).
//
// An earlier revision compiled arbitrary straight-line bodies to
// postfix tapes run by a small stack VM; measurement showed the
// dispatch overhead made it strictly slower than the closure tree on
// every workload, so only the copy specialization survives.

// sfn evaluates a stencil body expression at offset o — the current
// value of the nest's shared unit-stride induction register. Every
// array access in a recognized stencil row is Data[o+const], so one
// register add replaces the whole per-access environment traffic of
// the generic closure path.
type sfn func(f *frame, o int64) float64

// compileStencilLoop compiles the interior row kernel of a recognized
// stencil loop (Loop.Sten, see stencil.go): a single unchecked
// offset-form assignment whose reads all hang off the same unit-stride
// register. The kernel hoists the register into a local, skips the
// loop-variable and register slot updates entirely (nothing in the
// body reads them — all accesses are offset-form and VFromInt is
// rejected), and evaluates the closure tree in the exact operation
// order of the generic path, so results are bitwise identical.
func (c *compiler) compileStencilLoop(x *Loop, slot int, inds []cInd) stmtFn {
	if x.Sten == nil || x.Step != 1 || len(x.Body) != 1 {
		return nil
	}
	a, ok := x.Body[0].(*Assign)
	if !ok || a.CheckBounds || a.CheckCollision || a.Accumulate != nil || a.Off == nil {
		return nil
	}
	dstSlot, ok := c.arraySlots[a.Array]
	if !ok || c.prog.Arrays[dstSlot].TrackDefs {
		return nil
	}
	dInit, dOff, ok := unitStrideOff(x, inds, a.Off)
	if !ok {
		return nil
	}
	base := a.Off.(*ILin).Terms[0].Var
	body := c.compileStencilExpr(a.Rhs, base)
	if body == nil {
		return nil
	}
	trip := tripCount(x.From, x.To, x.Step)
	if trip <= 0 {
		return nil
	}
	return func(f *frame) {
		data := f.arrays[dstSlot].Data
		o := dInit(f)
		for n := trip; n > 0; n-- {
			data[o+dOff] = body(f, o)
			o++
		}
	}
}

// compileStencilExpr compiles a stencil body expression to an sfn, or
// nil when a subexpression needs the generic path. Every ARef must be
// offset-form over the single base register; calls, conditionals, and
// int conversions (which could observe the unmaintained loop variable)
// are rejected.
func (c *compiler) compileStencilExpr(e VExpr, base string) sfn {
	switch x := e.(type) {
	case *VConst:
		v := x.Value
		return func(*frame, int64) float64 { return v }
	case *VScalar:
		slot, ok := c.floatSlots[x.Name]
		if !ok {
			return nil
		}
		return func(f *frame, _ int64) float64 { return f.floats[slot] }
	case *ARef:
		if x.CheckBounds || x.CheckDefined || x.Off == nil {
			return nil
		}
		lin, isLin := x.Off.(*ILin)
		if !isLin || len(lin.Terms) != 1 || lin.Terms[0].Coeff != 1 || lin.Terms[0].Var != base {
			return nil
		}
		slot, ok := c.arraySlots[x.Array]
		if !ok || c.prog.Arrays[slot].TrackDefs {
			return nil
		}
		d := lin.Const
		return func(f *frame, o int64) float64 { return f.arrays[slot].Data[o+d] }
	case *VBin:
		l := c.compileStencilExpr(x.L, base)
		r := c.compileStencilExpr(x.R, base)
		if l == nil || r == nil {
			return nil
		}
		switch x.Op {
		case '+':
			return func(f *frame, o int64) float64 { return l(f, o) + r(f, o) }
		case '-':
			return func(f *frame, o int64) float64 { return l(f, o) - r(f, o) }
		case '*':
			return func(f *frame, o int64) float64 { return l(f, o) * r(f, o) }
		case '/':
			return func(f *frame, o int64) float64 { return l(f, o) / r(f, o) }
		}
		return nil
	case *VNeg:
		fn := c.compileStencilExpr(x.X, base)
		if fn == nil {
			return nil
		}
		return func(f *frame, o int64) float64 { return -fn(f, o) }
	}
	return nil
}

// compileFastLoop recognizes the unit-stride copy shape and returns a
// specialized executor, or nil when the loop needs the generic path.
// inds are the loop's compiled induction registers, in x.Inds order.
func (c *compiler) compileFastLoop(x *Loop, slot int, inds []cInd) stmtFn {
	if len(x.Body) != 1 {
		return nil
	}
	a, ok := x.Body[0].(*Assign)
	if !ok || a.CheckBounds || a.CheckCollision || a.Accumulate != nil || a.Off == nil {
		return nil
	}
	src, ok := a.Rhs.(*ARef)
	if !ok || src.CheckBounds || src.CheckDefined || src.Off == nil || src.Array == a.Array {
		return nil
	}
	dstSlot, ok := c.arraySlots[a.Array]
	if !ok {
		return nil
	}
	srcSlot, ok := c.arraySlots[src.Array]
	if !ok {
		return nil
	}
	// Definedness tracking needs the per-element path.
	if c.prog.Arrays[dstSlot].TrackDefs {
		return nil
	}
	dInit, dOff, ok := unitStrideOff(x, inds, a.Off)
	if !ok {
		return nil
	}
	sInit, sOff, ok := unitStrideOff(x, inds, src.Off)
	if !ok {
		return nil
	}
	trip := tripCount(x.From, x.To, x.Step)
	if trip <= 0 {
		return nil
	}
	return func(f *frame) {
		do := dInit(f) + dOff
		so := sInit(f) + sOff
		copy(f.arrays[dstSlot].Data[do:do+trip], f.arrays[srcSlot].Data[so:so+trip])
	}
}

// unitStrideOff matches an offset expression of the form
// const + 1·reg where reg is one of the loop's induction registers
// advancing by exactly one per iteration, returning the register's
// compiled init and the constant.
func unitStrideOff(x *Loop, inds []cInd, off IntExpr) (init intFn, d int64, ok bool) {
	lin, isLin := off.(*ILin)
	if !isLin || len(lin.Terms) != 1 || lin.Terms[0].Coeff != 1 {
		return nil, 0, false
	}
	for i, ind := range x.Inds {
		if ind.Name == lin.Terms[0].Var {
			if ind.Step != 1 {
				return nil, 0, false
			}
			return inds[i].init, lin.Const, true
		}
	}
	return nil, 0, false
}
