package loopir

// Interpreter specialization for strength-reduced loops. Most of the
// win from strength reduction comes from the generic closure path
// itself: an offset-form access (Assign.Off / ARef.Off) compiles to a
// single register load plus constant add instead of re-evaluating the
// subscript polynomial, which is what makes stencil reads and writes
// at constant deltas cheap (see compileOffset). One shape deserves
// more: a loop whose whole body is `dst@{r1} := src@{r2}` with both
// registers advancing by one is a unit-stride row copy, and lowering
// it to builtin copy turns the per-element interpreter loop into a
// single memmove. That shape is exactly what node splitting's row
// buffering produces (Jacobi's `rowbuf[j] := a[i-1,j]` pass).
//
// An earlier revision compiled arbitrary straight-line bodies to
// postfix tapes run by a small stack VM; measurement showed the
// dispatch overhead made it strictly slower than the closure tree on
// every workload, so only the copy specialization survives.

// compileFastLoop recognizes the unit-stride copy shape and returns a
// specialized executor, or nil when the loop needs the generic path.
// inds are the loop's compiled induction registers, in x.Inds order.
func (c *compiler) compileFastLoop(x *Loop, slot int, inds []cInd) stmtFn {
	if len(x.Body) != 1 {
		return nil
	}
	a, ok := x.Body[0].(*Assign)
	if !ok || a.CheckBounds || a.CheckCollision || a.Accumulate != nil || a.Off == nil {
		return nil
	}
	src, ok := a.Rhs.(*ARef)
	if !ok || src.CheckBounds || src.CheckDefined || src.Off == nil || src.Array == a.Array {
		return nil
	}
	dstSlot, ok := c.arraySlots[a.Array]
	if !ok {
		return nil
	}
	srcSlot, ok := c.arraySlots[src.Array]
	if !ok {
		return nil
	}
	// Definedness tracking needs the per-element path.
	if c.prog.Arrays[dstSlot].TrackDefs {
		return nil
	}
	dInit, dOff, ok := unitStrideOff(x, inds, a.Off)
	if !ok {
		return nil
	}
	sInit, sOff, ok := unitStrideOff(x, inds, src.Off)
	if !ok {
		return nil
	}
	trip := tripCount(x.From, x.To, x.Step)
	if trip <= 0 {
		return nil
	}
	return func(f *frame) {
		do := dInit(f) + dOff
		so := sInit(f) + sOff
		copy(f.arrays[dstSlot].Data[do:do+trip], f.arrays[srcSlot].Data[so:so+trip])
	}
}

// unitStrideOff matches an offset expression of the form
// const + 1·reg where reg is one of the loop's induction registers
// advancing by exactly one per iteration, returning the register's
// compiled init and the constant.
func unitStrideOff(x *Loop, inds []cInd, off IntExpr) (init intFn, d int64, ok bool) {
	lin, isLin := off.(*ILin)
	if !isLin || len(lin.Terms) != 1 || lin.Terms[0].Coeff != 1 {
		return nil, 0, false
	}
	for i, ind := range x.Inds {
		if ind.Name == lin.Terms[0].Var {
			if ind.Step != 1 {
				return nil, 0, false
			}
			return inds[i].init, lin.Const, true
		}
	}
	return nil, 0, false
}
