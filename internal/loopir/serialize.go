package loopir

import (
	"encoding/gob"
	"fmt"

	"arraycomp/internal/runtime"
)

// This file makes the loop IR durable: a compiled Program is pure data
// (every scalar parameter was folded during analysis, so bounds,
// strides, and subscript coefficients are concrete integers), which is
// what lets a fleet persist compiled plans to disk and reload them in
// another process without re-running any compile phase. Two details
// need care:
//
//   - the IR's statement/expression slots are interfaces, so every
//     concrete node type must be registered with encoding/gob;
//   - Assign.Accumulate is a Go closure (gob silently drops func-typed
//     struct fields), so accumulating stores carry a HasAccum marker
//     and RebindAccum re-derives the closure from Program.AccumOp
//     after decoding.

func init() {
	// Statements.
	gob.Register(&Loop{})
	gob.Register(&If{})
	gob.Register(&Assign{})
	gob.Register(&SetScalar{})
	gob.Register(&CopyArray{})
	gob.Register(&CheckFull{})
	gob.Register(&Fail{})
	gob.Register(&Fill{})
	// Integer expressions.
	gob.Register(&ILin{})
	gob.Register(&IVar{})
	gob.Register(&IConst{})
	gob.Register(&IBin{})
	gob.Register(&IIdx{})
	// Value expressions.
	gob.Register(&VConst{})
	gob.Register(&VFromInt{})
	gob.Register(&VScalar{})
	gob.Register(&ARef{})
	gob.Register(&VBin{})
	gob.Register(&VNeg{})
	gob.Register(&VCall{})
	gob.Register(&VCond{})
	// Boolean expressions.
	gob.Register(&BCmpInt{})
	gob.Register(&BCmpFloat{})
	gob.Register(&BAnd{})
	gob.Register(&BOr{})
	gob.Register(&BNot{})
	gob.Register(&BConst{})
	gob.Register(&BVerify{})
}

// RebindAccum restores the combining closures a gob round trip
// dropped: every Assign marked HasAccum gets the combiner named by
// Program.AccumOp. It must be called on every decoded Program before
// Compile; a marked store with no resolvable combiner is an error
// (running it would silently degrade the accumulation to a plain
// store).
func RebindAccum(p *Program) error {
	var comb runtime.CombineFunc
	if p.AccumOp != "" {
		var ok bool
		comb, ok = runtime.Combiner(p.AccumOp)
		if !ok {
			return fmt.Errorf("loopir: unknown combining function %q", p.AccumOp)
		}
	}
	var err error
	walkStmts(p.Stmts, func(s Stmt) {
		a, ok := s.(*Assign)
		if !ok || !a.HasAccum {
			return
		}
		if comb == nil {
			err = fmt.Errorf("loopir: accumulating store on %q but Program.AccumOp is empty", a.Array)
			return
		}
		a.Accumulate = comb
	})
	return err
}

// walkStmts visits every statement in the tree, pre-order.
func walkStmts(stmts []Stmt, visit func(Stmt)) {
	for _, s := range stmts {
		visit(s)
		switch x := s.(type) {
		case *Loop:
			walkStmts(x.Body, visit)
		case *If:
			walkStmts(x.Then, visit)
			walkStmts(x.Else, visit)
		}
	}
}

// Per-node byte charges for Size. They are deliberately coarse — the
// point is a deterministic, monotone measure of how much memory a
// cached plan actually holds (loop nests, schedules, subscript trees),
// so the cache's byte cap tracks plan complexity instead of source
// length alone.
const (
	sizeStmt  = 96 // statement node incl. slice headers
	sizeExpr  = 48 // expression node
	sizeTerm  = 24 // one ILin term
	sizeDecl  = 112
	sizeSched = 64 // ParSchedule / StencilInfo / SplitRecord / Ind
)

// Size estimates the retained bytes of a compiled IR program by
// walking every statement and expression. Deterministic for a given
// program, and strictly larger for larger plans.
func Size(p *Program) int64 {
	if p == nil {
		return 0
	}
	n := int64(128) + int64(len(p.Name)+len(p.AccumOp))
	for i := range p.Arrays {
		n += sizeDecl + int64(len(p.Arrays[i].Name)) + 16*int64(len(p.Arrays[i].B.Lo))
	}
	for _, s := range p.Scalars {
		n += 16 + int64(len(s))
	}
	n += sizeStmtList(p.Stmts)
	return n
}

func sizeStmtList(stmts []Stmt) int64 {
	var n int64
	for _, s := range stmts {
		n += sizeStmt
		switch x := s.(type) {
		case *Loop:
			for i := range x.Inds {
				n += sizeSched + sizeExprInt(x.Inds[i].Init)
			}
			if x.Par != nil {
				n += sizeSched + sizeExprInt(x.Par.AlignOn)
			}
			if x.Sten != nil {
				n += sizeSched
				for i := range x.Sten.Splits {
					n += sizeSched + sizeExprBool(x.Sten.Splits[i].Guard)
				}
			}
			n += sizeStmtList(x.Body)
		case *If:
			n += sizeExprBool(x.Cond)
			n += sizeStmtList(x.Then)
			n += sizeStmtList(x.Else)
		case *Assign:
			for _, sub := range x.Subs {
				n += sizeExprInt(sub)
			}
			n += sizeExprVal(x.Rhs) + sizeExprInt(x.Off)
		case *SetScalar:
			n += sizeExprVal(x.Rhs)
		case *Fill, *CopyArray, *CheckFull, *Fail:
			// flat nodes; the sizeStmt charge covers them
		}
	}
	return n
}

func sizeExprInt(e IntExpr) int64 {
	switch x := e.(type) {
	case nil:
		return 0
	case *ILin:
		return sizeExpr + sizeTerm*int64(len(x.Terms))
	case *IBin:
		return sizeExpr + sizeExprInt(x.L) + sizeExprInt(x.R)
	case *IIdx:
		n := int64(sizeExpr) + int64(len(x.Array))
		for _, sub := range x.Subs {
			n += sizeExprInt(sub)
		}
		return n
	default:
		return sizeExpr
	}
}

func sizeExprVal(e VExpr) int64 {
	switch x := e.(type) {
	case nil:
		return 0
	case *VFromInt:
		return sizeExpr + sizeExprInt(x.X)
	case *ARef:
		n := int64(sizeExpr) + sizeExprInt(x.Off)
		for _, sub := range x.Subs {
			n += sizeExprInt(sub)
		}
		return n
	case *VBin:
		return sizeExpr + sizeExprVal(x.L) + sizeExprVal(x.R)
	case *VNeg:
		return sizeExpr + sizeExprVal(x.X)
	case *VCall:
		n := int64(sizeExpr)
		for _, a := range x.Args {
			n += sizeExprVal(a)
		}
		return n
	case *VCond:
		return sizeExpr + sizeExprBool(x.C) + sizeExprVal(x.T) + sizeExprVal(x.E)
	default:
		return sizeExpr
	}
}

func sizeExprBool(e BExpr) int64 {
	switch x := e.(type) {
	case nil:
		return 0
	case *BCmpInt:
		return sizeExpr + sizeExprInt(x.L) + sizeExprInt(x.R)
	case *BCmpFloat:
		return sizeExpr + sizeExprVal(x.L) + sizeExprVal(x.R)
	case *BAnd:
		return sizeExpr + sizeExprBool(x.L) + sizeExprBool(x.R)
	case *BOr:
		return sizeExpr + sizeExprBool(x.L) + sizeExprBool(x.R)
	case *BNot:
		return sizeExpr + sizeExprBool(x.X)
	default:
		return sizeExpr
	}
}
