package loopir

import (
	"math"
	"strings"
	"testing"

	"arraycomp/internal/runtime"
)

// runOpt builds the program via mk twice, optimizes one copy with the
// stencil specializer on and one with it off, runs both, and returns
// the two result arrays for bitwise comparison. The specializer's
// contract is bitwise identity, not tolerance agreement.
func runSplitVsPlain(t *testing.T, mk func() *Program) (*runtime.Strict, *runtime.Strict) {
	t.Helper()
	ins := func(p *Program) map[string]*runtime.Strict {
		m := map[string]*runtime.Strict{}
		for _, d := range p.Arrays {
			if d.Role != RoleIn && d.Role != RoleInOut {
				continue
			}
			a := runtime.NewStrict(d.B)
			for i := range a.Data {
				a.Data[i] = 0.25 * float64(i+1)
			}
			m[d.Name] = a
		}
		return m
	}
	spec := mk()
	Optimize(spec)
	plain := mk()
	OptimizeWith(plain, OptOptions{NoStencil: true})
	specOut, err := mustCompile(t, spec).RunResult(ins(spec))
	if err != nil {
		t.Fatalf("specialized run: %v", err)
	}
	plainOut, err := mustCompile(t, plain).RunResult(ins(plain))
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	return specOut, plainOut
}

func assertBitwise(t *testing.T, spec, plain *runtime.Strict) {
	t.Helper()
	if len(spec.Data) != len(plain.Data) {
		t.Fatalf("result sizes differ: %d vs %d", len(spec.Data), len(plain.Data))
	}
	for i := range spec.Data {
		if math.Float64bits(spec.Data[i]) != math.Float64bits(plain.Data[i]) {
			t.Fatalf("element %d differs bitwise: specialized %v, plain %v",
				i, spec.Data[i], plain.Data[i])
		}
	}
}

// guarded1D builds: do i = 1..n: a[i] := if i == 1 then 1 else 0.5 + a[i-1]
// — the paper's Example 1 shape, the canonical interior/boundary split.
func guarded1D(n int64) func() *Program {
	return func() *Program {
		return &Program{
			Name:   "g1d",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
			Stmts: []Stmt{
				&Loop{Var: "i", From: 1, To: n, Step: 1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1))},
						Rhs: &VCond{
							C: &BCmpInt{Op: "==", L: &IVar{Name: "i"}, R: &IConst{Value: 1}},
							T: &VConst{Value: 1},
							E: &VBin{Op: '+',
								L: &VConst{Value: 0.5},
								R: &ARef{Array: "a", Subs: []IntExpr{lin(-1, term("i", 1))}}},
						},
					},
				}},
			},
		}
	}
}

func TestStencilSplitGuarded1D(t *testing.T) {
	mk := guarded1D(10)
	p := mk()
	Optimize(p)
	d := p.Dump()
	if !strings.Contains(d, "[stencil boundary]") && !strings.Contains(d, "boundary]") {
		t.Fatalf("no boundary clone in dump:\n%s", d)
	}
	if !strings.Contains(d, "interior]") {
		t.Fatalf("no interior clone in dump:\n%s", d)
	}
	if strings.Contains(d, "?") || strings.Contains(d, "if ") {
		// The guard must be fully resolved in both clones.
		t.Fatalf("residual guard after split:\n%s", d)
	}
	rep := CertifySplits(p)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("legal split falsified:\n%s", rep)
	}
	if rep.CertifiedCount == 0 {
		t.Fatalf("split not certified: %s", rep.Summary())
	}
	spec, plain := runSplitVsPlain(t, mk)
	assertBitwise(t, spec, plain)
	if got := spec.At(int64(10)); got != 5.5 {
		t.Fatalf("a[10] = %v, want 5.5", got)
	}
}

// TestStencilNestedGuardSplit reproduces the fuzzer shape where a
// clone of one split carries a residual guard that is resolved by a
// second pass: if k <= 3 then (if k <= 3 then 2.25 else 99) else 2.
// The clone over [1..3] must keep its membership in split #1 while
// gaining a record for the in-place resolution of the inner guard.
func TestStencilNestedGuardSplit(t *testing.T) {
	mk := func() *Program {
		inner := &VCond{
			C: &BCmpInt{Op: "<=", L: &IVar{Name: "k"}, R: &IConst{Value: 3}},
			T: &VConst{Value: 2.25},
			E: &VConst{Value: 99},
		}
		return &Program{
			Name:   "nested",
			Arrays: []ArrayDecl{{Name: "b", B: runtime.NewBounds1(1, 6), Role: RoleOut}},
			Stmts: []Stmt{
				&Loop{Var: "k", From: 1, To: 6, Step: 1, Body: []Stmt{
					&Assign{
						Array: "b",
						Subs:  []IntExpr{lin(0, term("k", 1))},
						Rhs: &VCond{
							C: &BCmpInt{Op: "<=", L: &IVar{Name: "k"}, R: &IConst{Value: 3}},
							T: inner,
							E: &VConst{Value: 2},
						},
					},
				}},
			},
		}
	}
	p := mk()
	Optimize(p)
	// Both loops survive; the [1..3] clone must carry two records: the
	// outer split and the in-place inner resolution.
	var recs int
	for _, s := range p.Stmts {
		if l, ok := s.(*Loop); ok && l.Sten != nil {
			recs += len(l.Sten.Splits)
		}
	}
	if recs < 3 {
		t.Fatalf("want >=3 split records across clones (2 partition + 1 in-place), got %d:\n%s", recs, p.Dump())
	}
	rep := CertifySplits(p)
	if rep.FalsifiedCount != 0 {
		t.Fatalf("nested split falsified:\n%s", rep)
	}
	spec, plain := runSplitVsPlain(t, mk)
	assertBitwise(t, spec, plain)
	for k := int64(1); k <= 6; k++ {
		want := 2.25
		if k > 3 {
			want = 2
		}
		if got := spec.At(k); got != want {
			t.Fatalf("b[%d] = %v, want %v", k, got, want)
		}
	}
}

// TestStencilEmptyInterior splits on i == 2 over [1..3]: three
// width-1 clones, no meaningful interior. The split must stay exact
// and the results identical.
func TestStencilEmptyInterior(t *testing.T) {
	mk := func() *Program {
		return &Program{
			Name:   "allb",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 3), Role: RoleOut}},
			Stmts: []Stmt{
				&Loop{Var: "i", From: 1, To: 3, Step: 1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1))},
						Rhs: &VCond{
							C: &BCmpInt{Op: "==", L: &IVar{Name: "i"}, R: &IConst{Value: 2}},
							T: &VConst{Value: 7},
							E: &VConst{Value: 3},
						},
					},
				}},
			},
		}
	}
	p := mk()
	Optimize(p)
	if rep := CertifySplits(p); rep.FalsifiedCount != 0 {
		t.Fatalf("all-boundary split falsified:\n%s", rep)
	}
	spec, plain := runSplitVsPlain(t, mk)
	assertBitwise(t, spec, plain)
	want := []float64{3, 7, 3}
	for i := int64(1); i <= 3; i++ {
		if spec.At(i) != want[i-1] {
			t.Fatalf("a[%d] = %v, want %v", i, spec.At(i), want[i-1])
		}
	}
}

// TestStencilAnnotate2D checks footprint recognition and halo-fed
// tiling on a Jacobi-style nest.
func TestStencilAnnotate2D(t *testing.T) {
	n := int64(128)
	at := func(di, dj int64) *ARef {
		return &ARef{Array: "b", Subs: []IntExpr{lin(di, term("i", 1)), lin(dj, term("j", 1))}}
	}
	p := &Program{
		Name: "jac",
		Arrays: []ArrayDecl{
			{Name: "a", B: runtime.NewBounds2(1, 1, n, n), Role: RoleOut},
			{Name: "b", B: runtime.NewBounds2(1, 1, n, n), Role: RoleIn},
		},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 2, To: n - 1, Step: 1, Parallel: true, Body: []Stmt{
				&Loop{Var: "j", From: 2, To: n - 1, Step: 1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1)), lin(0, term("j", 1))},
						Rhs: &VBin{Op: '+',
							L: &VBin{Op: '+', L: at(-1, 0), R: at(1, 0)},
							R: &VBin{Op: '+', L: at(0, -1), R: at(0, 1)}},
					},
				}},
			}},
		},
	}
	Optimize(p)
	outer := p.Stmts[0].(*Loop)
	if outer.Sten == nil || outer.Sten.Dims != 2 || outer.Sten.HaloI != 1 || outer.Sten.HaloJ != 1 {
		t.Fatalf("want 2-D halo (1,1) annotation, got %+v in\n%s", outer.Sten, p.Dump())
	}
	if !strings.Contains(p.Dump(), "[stencil 1x1 interior]") {
		t.Fatalf("dump missing stencil marker:\n%s", p.Dump())
	}
	if outer.Par != nil && outer.Par.TileI != 0 {
		if outer.Par.TileI < 8*outer.Sten.HaloI {
			t.Fatalf("halo-fed tile too thin: tileI=%d halo=%d", outer.Par.TileI, outer.Sten.HaloI)
		}
	}
}

// Degenerate shapes must fall back to the general path (or split
// trivially) and stay bitwise identical to the unspecialized build.
func TestStencilDegenerateFallback(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Program
	}{
		{"one-wide-array", guarded1D(1)},
		{"footprint-exceeds-extent", func() *Program {
			// Reads at ±2 over a 2-iteration loop: halo 2 >= extent 2.
			return &Program{
				Name: "fat",
				Arrays: []ArrayDecl{
					{Name: "a", B: runtime.NewBounds1(1, 8), Role: RoleOut},
					{Name: "b", B: runtime.NewBounds1(1, 8), Role: RoleIn},
				},
				Stmts: []Stmt{
					&Loop{Var: "i", From: 3, To: 4, Step: 1, Body: []Stmt{
						&Assign{
							Array: "a",
							Subs:  []IntExpr{lin(0, term("i", 1))},
							Rhs: &VBin{Op: '+',
								L: &ARef{Array: "b", Subs: []IntExpr{lin(-2, term("i", 1))}},
								R: &ARef{Array: "b", Subs: []IntExpr{lin(2, term("i", 1))}}},
						},
					}},
				},
			}
		}},
		{"asymmetric-offsets", func() *Program {
			return &Program{
				Name: "asym",
				Arrays: []ArrayDecl{
					{Name: "a", B: runtime.NewBounds1(1, 16), Role: RoleOut},
					{Name: "b", B: runtime.NewBounds1(1, 16), Role: RoleIn},
				},
				Stmts: []Stmt{
					&Loop{Var: "i", From: 4, To: 14, Step: 1, Body: []Stmt{
						&Assign{
							Array: "a",
							Subs:  []IntExpr{lin(0, term("i", 1))},
							Rhs: &VBin{Op: '+',
								L: &ARef{Array: "b", Subs: []IntExpr{lin(-3, term("i", 1))}},
								R: &ARef{Array: "b", Subs: []IntExpr{lin(1, term("i", 1))}}},
						},
					}},
				},
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, plain := runSplitVsPlain(t, c.mk)
			assertBitwise(t, spec, plain)
		})
	}
}

// TestStencilNegativeStrideUntouched: the splitter and the annotator
// are defined over unit-stride loops only; a backward recurrence must
// come out with no stencil marks and unchanged semantics.
func TestStencilNegativeStrideUntouched(t *testing.T) {
	mk := func() *Program {
		n := int64(8)
		return &Program{
			Name:   "bwd",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
			Stmts: []Stmt{
				&Loop{Var: "i", From: n, To: 1, Step: -1, Body: []Stmt{
					&Assign{
						Array: "a",
						Subs:  []IntExpr{lin(0, term("i", 1))},
						Rhs: &VCond{
							C: &BCmpInt{Op: "==", L: &IVar{Name: "i"}, R: &IConst{Value: n}},
							T: &VConst{Value: 1},
							E: &VBin{Op: '*',
								L: &ARef{Array: "a", Subs: []IntExpr{lin(1, term("i", 1))}},
								R: &VConst{Value: 2}},
						},
					},
				}},
			},
		}
	}
	p := mk()
	Optimize(p)
	if strings.Contains(p.Dump(), "stencil") {
		t.Fatalf("negative-stride loop gained a stencil mark:\n%s", p.Dump())
	}
	spec, plain := runSplitVsPlain(t, mk)
	assertBitwise(t, spec, plain)
	if got := spec.At(int64(1)); got != 128 {
		t.Fatalf("a[1] = %v, want 128", got)
	}
}

// TestCertifySplitsFalsifiesMisSplit forges broken splits — a gap in
// the partition, an overlap, and a wrong resolved guard value — and
// requires CertifySplits to falsify each with a witness.
func TestCertifySplitsFalsifiesMisSplit(t *testing.T) {
	guard := func() BExpr {
		return &BCmpInt{Op: "==", L: &IVar{Name: "i"}, R: &IConst{Value: 1}}
	}
	body := func() []Stmt {
		return []Stmt{&Assign{
			Array: "a",
			Subs:  []IntExpr{lin(0, term("i", 1))},
			Rhs:   &VConst{Value: 1},
		}}
	}
	mk := func(f1, t1, f2, t2 int64, val2 bool) *Program {
		return &Program{
			Name:   "forged",
			Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, 10), Role: RoleOut}},
			Stmts: []Stmt{
				&Loop{Var: "i", From: f1, To: t1, Step: 1,
					Sten: &StencilInfo{Boundary: true, Splits: []SplitRecord{
						{ID: 1, OrigFrom: 1, OrigTo: 10, Guard: guard(), GuardVal: true}}},
					Body: body()},
				&Loop{Var: "i", From: f2, To: t2, Step: 1,
					Sten: &StencilInfo{Splits: []SplitRecord{
						{ID: 1, OrigFrom: 1, OrigTo: 10, Guard: guard(), GuardVal: val2}}},
					Body: body()},
			},
		}
	}
	cases := []struct {
		name string
		p    *Program
	}{
		{"gap", mk(1, 1, 3, 10, false)},        // iteration 2 lost
		{"overlap", mk(1, 2, 2, 10, false)},    // iteration 2 runs twice
		{"wrong-value", mk(1, 1, 2, 10, true)}, // guard is false on [2..10]
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := CertifySplits(c.p)
			if rep.FalsifiedCount == 0 {
				t.Fatalf("forged split survived certification:\n%s", rep)
			}
			if len(rep.Failures[0].Witness) == 0 {
				t.Fatalf("falsification carries no witness: %s", rep.Failures[0])
			}
		})
	}
}

// TestStencilSplitStats checks the optimizer stats counters feed
// through Changed/String so `hacc report` surfaces the specializer.
func TestStencilSplitStats(t *testing.T) {
	p := guarded1D(10)()
	st := OptimizeWith(p, OptOptions{})
	if st.StencilSplits == 0 || st.StencilGuards == 0 {
		t.Fatalf("split stats not recorded: %+v", st)
	}
	if !st.Changed() {
		t.Fatal("stats with splits must report Changed")
	}
	if s := st.String(); !strings.Contains(s, "stencil") {
		t.Fatalf("stats string missing stencil counters: %s", s)
	}
}
