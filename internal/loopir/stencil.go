package loopir

// Stencil specialization: shape recognition and interior/boundary
// splitting, run between the rewrite passes and parallel planning.
//
// The paper's flagship workloads (SOR, Jacobi smoothing, Livermore 23,
// the §3 wavefront) are all stencils: every array access in the nest
// body sits at a fixed constant offset from the write position, so the
// nest has a static footprint (the halo — max |offset| per dimension).
// Two passes exploit that:
//
//  1. Guard splitting (splitStencilGuards). A loop whose body is a
//     single guarded statement — an Assign whose right-hand side is a
//     top-level VCond, or a single If — with the condition affine in
//     the loop variable alone is partitioned into the maximal
//     subranges on which the condition is constant. Each subrange
//     becomes a clone of the loop with the guard resolved away: the
//     interior clone runs the general arm branch-free, the thin
//     boundary strips keep the special-case arm. Clones rename their
//     induction registers (register names are program-unique) and
//     shift register inits to their new entry points; the arithmetic
//     per element is untouched, so results are bitwise identical.
//     Every clone carries replay records (split ID, original range,
//     resolved guard — one per split it descends from, since clones
//     can be re-split) that CertifySplits re-checks from scratch.
//
//  2. Shape annotation (annotateStencils). Guard-free nests whose
//     reads all sit at constant per-dimension offsets from the write
//     are annotated with their footprint (Loop.Sten). The tile
//     planner derives halo-fed tile sizes from the annotation, the
//     interpreter compiles a direct interior kernel for it (fast.go),
//     and gogen emits a bounds-check-elimination-friendly interior
//     loop over constant-width row slices (gogen).
//
// Splitting runs before planning on purpose: the interior clone of a
// guarded recurrence frequently becomes schedulable (its distance
// vectors are no longer clouded by the special-case arm), while the
// boundary strips fall under the cost model's thresholds and stay
// sequential — the schedules operate on the interior, the boundaries
// run sequentially, with no executor changes needed.

// splitBoundLimit bounds the loop range magnitudes the splitter will
// reason about: beyond it the breakpoint arithmetic (coefficient ×
// bound) could overflow int64, so the loop keeps its guard.
const splitBoundLimit = int64(1) << 31

// maxSplitSegments caps the clones one guard split may produce; a
// condition that partitions the range more finely is left alone
// (the body would be duplicated past any plausible payoff).
const maxSplitSegments = 4

// splitStencilGuards walks one nesting level and applies guard
// splitting. innerLocked suppresses splitting of the inner loop of a
// schedulable 2-D nest (peeling it would break the nest shape the
// planner and the tiled executors require).
func (o *optimizer) splitStencilGuards(stmts []Stmt, innerLocked bool) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			out = append(out, o.splitLoop(x, innerLocked)...)
		case *If:
			x.Then = o.splitStencilGuards(x.Then, innerLocked)
			x.Else = o.splitStencilGuards(x.Else, innerLocked)
			out = append(out, x)
		default:
			out = append(out, s)
		}
	}
	return out
}

// splitLoop attempts a guard split at l and recurses into whatever the
// attempt produced.
func (o *optimizer) splitLoop(l *Loop, innerLocked bool) []Stmt {
	lock := (l.Parallel || l.Doacross) && nest2D(l) != nil
	if !innerLocked {
		if clones := o.trySplit(l); clones != nil {
			var out []Stmt
			for _, c := range clones {
				// A clone may expose further guards (nested conditions
				// resolve one level per pass application).
				out = append(out, o.splitLoop(c, lock)...)
			}
			return out
		}
	}
	l.Body = o.splitStencilGuards(l.Body, lock)
	return []Stmt{l}
}

// guardSite locates the single guarded statement a split would
// resolve: an Assign with a top-level VCond or an If, alone among its
// host loop's direct statements in carrying a condition. Sibling
// statements are cloned unchanged by the split.
type guardSite struct {
	cond   BExpr
	isIf   bool
	assign *Assign // VCond site
	ifStmt *If
	host   *Loop // loop whose body holds the guarded statement
	idx    int   // its position in host.Body
}

// findGuard returns the guard site reachable from l, descending into a
// sole nested loop when the current level has no candidate. Two
// candidates (or two nested loops) make the split ambiguous — nil.
func findGuard(l *Loop) *guardSite {
	var site *guardSite
	var child *Loop
	for i, s := range l.Body {
		switch x := s.(type) {
		case *Assign:
			if vc, ok := x.Rhs.(*VCond); ok {
				if site != nil {
					return nil
				}
				site = &guardSite{cond: vc.C, assign: x, host: l, idx: i}
			}
		case *If:
			if site != nil {
				return nil
			}
			site = &guardSite{cond: x.Cond, isIf: true, ifStmt: x, host: l, idx: i}
		case *Loop:
			if child != nil {
				return nil
			}
			child = x
		}
	}
	if site != nil {
		return site
	}
	if child != nil {
		return findGuard(child)
	}
	return nil
}

// trySplit performs the guard split of l, returning the replacement
// clones, or nil when the loop does not qualify. When the guard is
// constant over the whole range it is resolved in place (a
// zero-clone split) and the single original loop is returned.
func (o *optimizer) trySplit(l *Loop) []*Loop {
	if l.Step != 1 {
		return nil
	}
	trip := tripCount(l.From, l.To, l.Step)
	if trip < 1 || trip >= tripSaturated {
		return nil
	}
	if l.From < -splitBoundLimit || l.To > splitBoundLimit {
		return nil
	}
	site := findGuard(l)
	if site == nil {
		return nil
	}
	if !guardAffineIn(site.cond, l.Var) {
		return nil
	}
	bounds := guardBreakpoints(site.cond, l.Var, l.From, l.To)
	if bounds == nil {
		return nil
	}
	if len(bounds) == 0 {
		// Constant over the whole range: resolve the guard in place.
		// The loop still records the resolution (a one-clone split) so
		// certification replays it; a clone of an earlier split keeps
		// its inherited records alongside.
		val := evalGuard(site.cond, l.Var, l.From)
		resolveGuard(site, val)
		pruneInds(l)
		if l.Sten == nil {
			l.Sten = &StencilInfo{}
		}
		l.Sten.Splits = append(l.Sten.Splits, SplitRecord{
			ID: o.nextSplitID(), OrigFrom: l.From, OrigTo: l.To,
			Guard: site.cond, GuardVal: val,
		})
		o.stats.StencilGuards++
		return []*Loop{l}
	}
	if len(bounds)+1 > maxSplitSegments {
		return nil
	}
	id := o.nextSplitID()
	starts := append([]int64{l.From}, bounds...)
	clones := make([]*Loop, len(starts))
	// Records inherited from splits this loop itself descends from.
	var inherited []SplitRecord
	if l.Sten != nil {
		inherited = l.Sten.Splits
	}
	// Identify the interior: the widest segment (ties go to the first).
	interior, widest := 0, int64(-1)
	for i, from := range starts {
		to := l.To
		if i+1 < len(starts) {
			to = starts[i+1] - 1
		}
		if w := to - from + 1; w > widest {
			widest, interior = w, i
		}
	}
	for i, from := range starts {
		to := l.To
		if i+1 < len(starts) {
			to = starts[i+1] - 1
		}
		c := o.cloneLoopRange(l, from, to)
		cs := findGuard(c)
		val := evalGuard(site.cond, l.Var, from)
		resolveGuard(cs, val)
		pruneInds(c)
		recs := make([]SplitRecord, 0, len(inherited)+1)
		recs = append(recs, inherited...)
		recs = append(recs, SplitRecord{
			ID: id, OrigFrom: l.From, OrigTo: l.To,
			Guard: site.cond, GuardVal: val,
		})
		c.Sten = &StencilInfo{Boundary: i != interior, Splits: recs}
		clones[i] = c
	}
	o.stats.StencilSplits++
	o.stats.StencilGuards += len(clones)
	return clones
}

// pruneInds drops induction registers that guard resolution orphaned:
// a register whose only uses sat in the discarded arm would otherwise
// surface as a declared-but-unused variable in emitted Go code.
func pruneInds(l *Loop) {
	kept := l.Inds[:0]
	for _, ind := range l.Inds {
		if usesVarStmts(l.Body, ind.Name) {
			kept = append(kept, ind)
		}
	}
	l.Inds = kept
	for _, s := range l.Body {
		pruneIndsIn(s)
	}
}

func pruneIndsIn(s Stmt) {
	switch x := s.(type) {
	case *Loop:
		pruneInds(x)
	case *If:
		for _, t := range x.Then {
			pruneIndsIn(t)
		}
		for _, t := range x.Else {
			pruneIndsIn(t)
		}
	}
}

func usesVarStmts(stmts []Stmt, name string) bool {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			for _, ind := range x.Inds {
				if usesVarInt(ind.Init, name) {
					return true
				}
			}
			if usesVarStmts(x.Body, name) {
				return true
			}
		case *If:
			if usesVarBool(x.Cond, name) || usesVarStmts(x.Then, name) || usesVarStmts(x.Else, name) {
				return true
			}
		case *Assign:
			for _, sub := range x.Subs {
				if usesVarInt(sub, name) {
					return true
				}
			}
			if x.Off != nil && usesVarInt(x.Off, name) {
				return true
			}
			if usesVarV(x.Rhs, name) {
				return true
			}
		case *SetScalar:
			if usesVarV(x.Rhs, name) {
				return true
			}
		}
	}
	return false
}

func usesVarInt(e IntExpr, name string) bool {
	switch x := e.(type) {
	case *IVar:
		return x.Name == name
	case *ILin:
		for _, t := range x.Terms {
			if t.Var == name {
				return true
			}
		}
	case *IBin:
		return usesVarInt(x.L, name) || usesVarInt(x.R, name)
	}
	return false
}

func usesVarV(e VExpr, name string) bool {
	switch x := e.(type) {
	case *VFromInt:
		return usesVarInt(x.X, name)
	case *ARef:
		for _, sub := range x.Subs {
			if usesVarInt(sub, name) {
				return true
			}
		}
		if x.Off != nil && usesVarInt(x.Off, name) {
			return true
		}
	case *VBin:
		return usesVarV(x.L, name) || usesVarV(x.R, name)
	case *VNeg:
		return usesVarV(x.X, name)
	case *VCall:
		for _, arg := range x.Args {
			if usesVarV(arg, name) {
				return true
			}
		}
	case *VCond:
		return usesVarBool(x.C, name) || usesVarV(x.T, name) || usesVarV(x.E, name)
	}
	return false
}

func usesVarBool(e BExpr, name string) bool {
	switch x := e.(type) {
	case *BCmpInt:
		return usesVarInt(x.L, name) || usesVarInt(x.R, name)
	case *BCmpFloat:
		return usesVarV(x.L, name) || usesVarV(x.R, name)
	case *BAnd:
		return usesVarBool(x.L, name) || usesVarBool(x.R, name)
	case *BOr:
		return usesVarBool(x.L, name) || usesVarBool(x.R, name)
	case *BNot:
		return usesVarBool(x.X, name)
	}
	return false
}

// resolveGuard substitutes the proven-constant arm at the guard site:
// VCond assignments keep the taken branch, If statements have the
// taken arm spliced into their position (an empty arm just removes
// the statement).
func resolveGuard(site *guardSite, val bool) {
	if site.isIf {
		arm := site.ifStmt.Then
		if !val {
			arm = site.ifStmt.Else
		}
		old := site.host.Body
		body := make([]Stmt, 0, len(old)-1+len(arm))
		body = append(body, old[:site.idx]...)
		body = append(body, arm...)
		body = append(body, old[site.idx+1:]...)
		site.host.Body = body
		return
	}
	vc := site.assign.Rhs.(*VCond)
	if val {
		site.assign.Rhs = vc.T
	} else {
		site.assign.Rhs = vc.E
	}
}

func (o *optimizer) nextSplitID() int {
	o.splitSeq++
	return o.splitSeq
}

// cloneLoopRange deep-copies l restricted to [from, to], renaming
// every induction register bound inside the clone (register names are
// program-unique; see collectLoopVars) and shifting the clone's own
// register inits to the new entry point.
func (o *optimizer) cloneLoopRange(l *Loop, from, to int64) *Loop {
	c := cloneStmt(l).(*Loop)
	c.From, c.To = from, to
	for i := range c.Inds {
		// Init was computed for entry at l.From; entering at `from`
		// advances the register by Step·(from − l.From).
		c.Inds[i].Init = shiftInit(c.Inds[i].Init, c.Inds[i].Step*(from-l.From))
	}
	o.freshenRegisters(c)
	return c
}

// shiftInit adds a constant to a register init expression.
func shiftInit(e IntExpr, d int64) IntExpr {
	if d == 0 {
		return e
	}
	switch x := e.(type) {
	case *IConst:
		return &IConst{Value: x.Value + d}
	case *ILin:
		cp := &ILin{Const: x.Const + d, Terms: append([]ITerm(nil), x.Terms...)}
		return cp
	default:
		return &IBin{Op: '+', L: e, R: &IConst{Value: d}}
	}
}

// freshenRegisters renames every induction register bound at or below
// l to a fresh program-unique name.
func (o *optimizer) freshenRegisters(l *Loop) {
	for i := range l.Inds {
		old := l.Inds[i].Name
		name := o.fresh("o", &o.indSeq)
		l.Inds[i].Name = name
		l.Body = renameVar(l.Body, old, name)
	}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *Loop:
				o.freshenRegisters(x)
			case *If:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	walk(l.Body)
}

// cloneStmt deep-copies a statement tree. Immutable leaves (CopyArray,
// CheckFull, Fail, Fill) are shared; everything the optimizer may
// mutate later is copied.
func cloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Loop:
		cp := *x
		cp.Inds = append([]Ind(nil), x.Inds...)
		if x.Par != nil {
			par := *x.Par
			cp.Par = &par
		}
		if x.Sten != nil {
			st := *x.Sten
			st.Splits = append([]SplitRecord(nil), x.Sten.Splits...)
			cp.Sten = &st
		}
		cp.Body = cloneStmts(x.Body)
		return &cp
	case *If:
		cp := *x
		cp.Then = cloneStmts(x.Then)
		cp.Else = cloneStmts(x.Else)
		return &cp
	case *Assign:
		cp := *x
		cp.Subs = append([]IntExpr(nil), x.Subs...)
		return &cp
	case *SetScalar:
		cp := *x
		return &cp
	default:
		return s
	}
}

func cloneStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = cloneStmt(s)
	}
	return out
}

// mergeSten overlays shape fields onto an existing (split) record,
// preserving any split-replay records already attached.
func mergeSten(prev, next *StencilInfo) *StencilInfo {
	if prev == nil {
		return next
	}
	prev.Dims = next.Dims
	prev.HaloI = next.HaloI
	prev.HaloJ = next.HaloJ
	prev.Inner = next.Inner
	return prev
}

// --- guard arithmetic ---

// guardAffineIn reports whether every atom of the condition is an
// integer comparison affine in v alone (no other variables, no
// division, no float comparisons).
func guardAffineIn(e BExpr, v string) bool {
	switch x := e.(type) {
	case *BConst:
		return true
	case *BCmpInt:
		l, r := intLin(x.L), intLin(x.R)
		if l == nil || r == nil {
			return false
		}
		for name := range l.t {
			if name != v {
				return false
			}
		}
		for name := range r.t {
			if name != v {
				return false
			}
		}
		if abs64(l.t[v]) > splitBoundLimit || abs64(r.t[v]) > splitBoundLimit ||
			abs64(l.c) > splitBoundLimit<<16 || abs64(r.c) > splitBoundLimit<<16 {
			return false
		}
		return true
	case *BAnd:
		return guardAffineIn(x.L, v) && guardAffineIn(x.R, v)
	case *BOr:
		return guardAffineIn(x.L, v) && guardAffineIn(x.R, v)
	case *BNot:
		return guardAffineIn(x.X, v)
	}
	return false
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// evalGuard evaluates the condition at v = val. Only the forms
// guardAffineIn admits reach here.
func evalGuard(e BExpr, v string, val int64) bool {
	switch x := e.(type) {
	case *BConst:
		return x.Value
	case *BCmpInt:
		l := intLin(x.L)
		r := intLin(x.R)
		lv := l.c + l.t[v]*val
		rv := r.c + r.t[v]*val
		switch x.Op {
		case "==":
			return lv == rv
		case "/=":
			return lv != rv
		case "<":
			return lv < rv
		case "<=":
			return lv <= rv
		case ">":
			return lv > rv
		case ">=":
			return lv >= rv
		}
		return false
	case *BAnd:
		return evalGuard(x.L, v, val) && evalGuard(x.R, v, val)
	case *BOr:
		return evalGuard(x.L, v, val) || evalGuard(x.R, v, val)
	case *BNot:
		return !evalGuard(x.X, v, val)
	}
	return false
}

// guardBreakpoints returns the ascending values b in (from, to] at
// which the condition's truth differs from b−1 — the split points of
// the range. An empty (non-nil) slice means the condition is constant
// over [from, to]. Nil means the condition is not analyzable.
//
// Every truth change of the formula is a truth change of some atom,
// and an affine atom a·v + c ⟨op⟩ 0 changes truth only adjacent to
// its root: candidates ⌊−c/a⌋ and ⌊−c/a⌋+1 cover every comparison
// operator, including the re-entrant ==//=. Candidates are verified
// by direct evaluation, so the result is exact.
func guardBreakpoints(e BExpr, v string, from, to int64) []int64 {
	cands := map[int64]bool{}
	ok := collectBreakCandidates(e, v, cands)
	if !ok {
		return nil
	}
	bounds := []int64{}
	for c := range cands {
		for _, b := range []int64{c, c + 1} {
			if b > from && b <= to && !containsI64(bounds, b) &&
				evalGuard(e, v, b) != evalGuard(e, v, b-1) {
				bounds = append(bounds, b)
			}
		}
	}
	sortI64(bounds)
	return bounds
}

func collectBreakCandidates(e BExpr, v string, out map[int64]bool) bool {
	switch x := e.(type) {
	case *BConst:
		return true
	case *BCmpInt:
		l, r := intLin(x.L), intLin(x.R)
		a := l.t[v] - r.t[v]
		c := l.c - r.c
		if a == 0 {
			return true // constant atom: no breakpoints
		}
		out[floorDiv(-c, a)] = true
		return true
	case *BAnd:
		return collectBreakCandidates(x.L, v, out) && collectBreakCandidates(x.R, v, out)
	case *BOr:
		return collectBreakCandidates(x.L, v, out) && collectBreakCandidates(x.R, v, out)
	case *BNot:
		return collectBreakCandidates(x.X, v, out)
	}
	return false
}

// floorDiv is floor(a/b) for b ≠ 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func containsI64(xs []int64, x int64) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func sortI64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// --- shape annotation ---

// annotateStencils marks every guard-free fixed-offset nest with its
// footprint. Runs after splitting (so interior clones are seen) and
// before planning (so halo-fed tile sizes can be derived).
func (o *optimizer) annotateStencils(stmts []Stmt) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			if !o.annotateStencil(x) {
				o.annotateStencils(x.Body)
			}
		case *If:
			o.annotateStencils(x.Then)
			o.annotateStencils(x.Else)
		}
	}
}

// annotateStencil tries to match l as a stencil nest. 2-D: the nest2D
// shape with a single-Assign inner body. 1-D: a flat single-Assign
// loop. Returns true when an annotation was attached (no deeper
// matches are sought).
func (o *optimizer) annotateStencil(l *Loop) bool {
	if l.Step != 1 {
		return false
	}
	if inner := nest2D(l); inner != nil {
		hi, hj, ok := o.stencilShape(inner, l.Var, inner.Var)
		if !ok || hi+hj < 1 {
			return false
		}
		l.Sten = mergeSten(l.Sten, &StencilInfo{Dims: 2, HaloI: hi, HaloJ: hj})
		inner.Sten = mergeSten(inner.Sten, &StencilInfo{Dims: 2, HaloI: hi, HaloJ: hj, Inner: true})
		o.stats.StencilNests++
		return true
	}
	if hasLoop(l.Body) {
		return false
	}
	halo, _, ok := o.stencilShape(l, l.Var, "")
	if !ok || halo < 1 {
		return false
	}
	l.Sten = mergeSten(l.Sten, &StencilInfo{Dims: 1, HaloI: halo})
	o.stats.StencilNests++
	return true
}

// stencilShape matches the loop body as a single plain assignment
// whose write subscripts are dimension-aligned with (iVar, jVar) and
// whose reads each differ from the write by per-dimension constants.
// Returns the footprint per loop dimension.
func (o *optimizer) stencilShape(l *Loop, iVar, jVar string) (haloI, haloJ int64, ok bool) {
	if len(l.Body) != 1 {
		return 0, 0, false
	}
	a, isAssign := l.Body[0].(*Assign)
	if !isAssign || a.CheckBounds || a.CheckCollision || a.Accumulate != nil {
		return 0, 0, false
	}
	d := o.prog.Decl(a.Array)
	if d == nil || d.TrackDefs {
		return 0, 0, false
	}
	w := make([]*linForm, len(a.Subs))
	for i, s := range a.Subs {
		f := intLin(s)
		if f == nil {
			return 0, 0, false
		}
		w[i] = f
	}
	// Dimension alignment: exactly one write dimension depends on each
	// loop variable (the nest writes a genuinely 2-D/1-D region).
	dimOf := func(v string) int {
		dim := -1
		for i, f := range w {
			if f.t[v] != 0 {
				if dim != -1 {
					return -2 // variable spread over two dimensions
				}
				dim = i
			}
		}
		return dim
	}
	iDim := dimOf(iVar)
	if iDim < 0 {
		return 0, 0, false
	}
	jDim := -1
	if jVar != "" {
		jDim = dimOf(jVar)
		if jDim < 0 || jDim == iDim {
			return 0, 0, false
		}
	}
	ok = true
	var walkV func(e VExpr)
	addRead := func(r *ARef) {
		if !ok || r.CheckBounds || r.CheckDefined {
			ok = false
			return
		}
		rd := o.prog.Decl(r.Array)
		if rd == nil || rd.TrackDefs || len(r.Subs) != len(w) {
			ok = false
			return
		}
		for dim, s := range r.Subs {
			f := intLin(s)
			if f == nil {
				ok = false
				return
			}
			// The read must shift the write by a constant: identical
			// variable coefficients, any constant difference.
			if len(f.t) != len(w[dim].t) {
				ok = false
				return
			}
			for v, c := range f.t {
				if w[dim].t[v] != c {
					ok = false
					return
				}
			}
			diff := abs64(f.c - w[dim].c)
			switch dim {
			case iDim:
				if diff > haloI {
					haloI = diff
				}
			case jDim:
				if diff > haloJ {
					haloJ = diff
				}
			default:
				if diff != 0 {
					ok = false
					return
				}
			}
		}
	}
	walkV = func(e VExpr) {
		switch x := e.(type) {
		case *ARef:
			addRead(x)
		case *VBin:
			walkV(x.L)
			walkV(x.R)
		case *VNeg:
			walkV(x.X)
		case *VCall:
			for _, arg := range x.Args {
				walkV(arg)
			}
		case *VCond:
			// Guards belong to the splitter; a residual conditional
			// body is not a uniform stencil.
			ok = false
		}
	}
	walkV(a.Rhs)
	if !ok {
		return 0, 0, false
	}
	return haloI, haloJ, true
}
