package loopir

import (
	"strings"
	"testing"

	"arraycomp/internal/runtime"
)

func parallelSquares(n int64, parallel bool) *Program {
	return &Program{
		Name:   "psquares",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: n, Step: 1, Parallel: parallel, Body: []Stmt{
				&Assign{
					Array: "a",
					Subs:  []IntExpr{lin(0, term("i", 1))},
					Rhs:   &VFromInt{X: &IBin{Op: '*', L: &IVar{Name: "i"}, R: &IVar{Name: "i"}}},
				},
			}},
		},
	}
}

func TestParallelLoopMatchesSequential(t *testing.T) {
	n := int64(10_000) // above minParallelTrip so sharding actually happens
	seq, err := mustCompile(t, parallelSquares(n, false)).RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mustCompile(t, parallelSquares(n, true)).RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.EqualWithin(par, 0) {
		t.Fatal("parallel and sequential results differ")
	}
}

func TestParallelSmallTripStaysSequential(t *testing.T) {
	// Below minParallelTrip the loop must not shard (and must still be
	// correct).
	out, err := mustCompile(t, parallelSquares(64, true)).RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(8) != 64 {
		t.Errorf("a(8) = %v", out.At(8))
	}
}

func TestParallelErrorPropagates(t *testing.T) {
	n := int64(8192)
	p := &Program{
		Name:   "pfail",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: 1, To: n, Step: 1, Parallel: true, Body: []Stmt{
				// Out-of-bounds at i = n (subscript i+1), checked.
				&Assign{
					Array:       "a",
					Subs:        []IntExpr{lin(1, term("i", 1))},
					Rhs:         &VConst{Value: 1},
					CheckBounds: true,
				},
			}},
		},
	}
	_, err := mustCompile(t, p).RunResult(nil)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("want bounds error from worker, got %v", err)
	}
}

func TestParallelBackwardLoop(t *testing.T) {
	n := int64(8192)
	p := &Program{
		Name:   "pback",
		Arrays: []ArrayDecl{{Name: "a", B: runtime.NewBounds1(1, n), Role: RoleOut}},
		Stmts: []Stmt{
			&Loop{Var: "i", From: n, To: 1, Step: -1, Parallel: true, Body: []Stmt{
				&Assign{Array: "a", Subs: []IntExpr{lin(0, term("i", 1))},
					Rhs: &VFromInt{X: &IVar{Name: "i"}}},
			}},
		},
	}
	out, err := mustCompile(t, p).RunResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int64{1, n / 2, n} {
		if out.At(i) != float64(i) {
			t.Errorf("a(%d) = %v", i, out.At(i))
		}
	}
}

func TestTripCount(t *testing.T) {
	cases := []struct{ from, to, step, want int64 }{
		{1, 10, 1, 10},
		{10, 1, -1, 10},
		{1, 10, 3, 4},
		{1, 0, 1, 0},
		{0, 1, -1, 0},
		{5, 5, 1, 1},
		{9, 1, -2, 5},
	}
	for _, c := range cases {
		if got := tripCount(c.from, c.to, c.step); got != c.want {
			t.Errorf("tripCount(%d,%d,%d) = %d, want %d", c.from, c.to, c.step, got, c.want)
		}
	}
}

func TestParallelDumpAnnotation(t *testing.T) {
	d := parallelSquares(10, true).Dump()
	if !strings.Contains(d, "forward, parallel") {
		t.Errorf("dump missing parallel annotation:\n%s", d)
	}
}
