package loopir

import (
	"runtime"
)

// Parallel planning: the optimizer's last pass walks the optimized
// statement tree and attaches a concrete ParSchedule to loops the
// scheduler marked Parallel (no carried dependences at that level) or
// Doacross (carried dependences consistent with the pass direction).
//
// The scheduler's verdicts are per-level and symbolic; this pass
// re-derives the *concrete distance vectors* of every dependence inside
// the candidate nest — bounds, strides and subscript coefficients are
// all integers by now — and picks the strongest legal schedule:
//
//   - no carried conflicts at all      → ParTile (2-D) / ParShard (1-D)
//   - all distances component-wise ≥ 0 → ParWavefront (anti-diagonal
//     bands of cache tiles, barrier between diagonals)
//   - 1-D distances with gcd g ≥ 2     → ParChains (g independent
//     residue-class chains)
//   - anything else                    → sequential
//
// A schedule is only attached when the trip/work cost model says the
// parallel dispatch (and, for wavefronts, the barriers) will pay for
// itself.

// --- cost model ---

// The model charges abstract work units (the same currency as
// estimateWork) for engine overheads: handing a closure to a pool
// worker, and one barrier phase of a wavefront cohort. A schedule is
// worthwhile when the loop's total work covers the overhead of a
// typical cohort by parPayoff, so small or cheap loops stay sequential
// no matter how parallel they look.
const (
	parDispatchWork = 1 << 10 // per-worker handoff
	parBarrierWork  = 1 << 9  // per barrier phase, per worker
	parPayoff       = 8       // required work : overhead ratio
	parCohortEst    = 4       // overhead is charged for this many workers
)

// parWorthwhile decides plain sharding (and chains): total work must
// dwarf the dispatch overhead of a small cohort.
func parWorthwhile(trip, bodyWork int64) bool {
	if trip < 2 {
		return false
	}
	return satMul(trip, bodyWork) >= parPayoff*parCohortEst*parDispatchWork
}

// tileWorthwhile decides tiled schedules; wavefronts additionally pay
// one barrier per tile anti-diagonal. Degenerate shapes (non-positive
// extents or tiles, e.g. from a saturated trip count) never pay.
func tileWorthwhile(ni, nj, bodyWork, tI, tJ int64, wavefront bool) bool {
	if ni < 1 || nj < 1 || tI < 1 || tJ < 1 {
		return false
	}
	nti := (ni-1)/tI + 1
	ntj := (nj-1)/tJ + 1
	if satMul(nti, ntj) < 2 {
		return false
	}
	overhead := int64(parCohortEst) * parDispatchWork
	if wavefront {
		if nti < 2 && ntj < 2 {
			return false
		}
		overhead = satAdd(overhead, satMul(satAdd(nti, ntj)-1, parCohortEst*parBarrierWork))
	}
	total := satMul(satMul(ni, nj), bodyWork)
	return total >= satMul(parPayoff, overhead)
}

// chooseTile picks the cache tile extents for an ni×nj nest: roughly
// 2·workers tiles along each dimension so every anti-diagonal keeps the
// cohort busy, clamped so a tile stays big enough to amortize its
// dispatch and small enough to live in cache.
func chooseTile(ni, nj int64) (tI, tJ int64) {
	est := int64(runtime.GOMAXPROCS(0))
	if est < 1 {
		est = 1
	}
	pick := func(n int64) int64 {
		t := n / (2 * est)
		if t < 8 {
			t = 8
		}
		if t > 64 {
			t = 64
		}
		if t > n {
			t = n
		}
		if t < 1 {
			// A non-positive extent (empty or saturated-degenerate nest)
			// must never produce a zero-diagonal tile.
			t = 1
		}
		return t
	}
	return pick(ni), pick(nj)
}

// chooseStencilTile picks tile extents for a recognized stencil nest
// (Loop.Sten): the footprint replaces the generic occupancy guess. A
// halo of h means each tile edge re-touches h rows/columns of its
// neighbor, so the tile must be tall enough that the shared frontier
// is a small fraction of its area — at least 8·haloI rows — while the
// inner extent is stretched toward the cache-line-friendly maximum
// (the interior row is unit-stride, so wide tiles cost nothing extra
// and cut the number of synchronizing diagonals).
func chooseStencilTile(ni, nj int64, st *StencilInfo) (tI, tJ int64) {
	gi, gj := chooseTile(ni, nj)
	tI = 8 * st.HaloI
	if tI < gi {
		tI = gi
	}
	if tI > 64 {
		tI = 64
	}
	if tI > ni {
		tI = ni
	}
	tJ = 64
	if tJ < gj {
		tJ = gj
	}
	if tJ > nj {
		tJ = nj
	}
	if tI < 1 {
		tI = 1
	}
	if tJ < 1 {
		tJ = 1
	}
	return tI, tJ
}

// --- planning walk ---

// planParallel is invoked by Optimize after all other rewrites.
func (o *optimizer) planParallel(stmts []Stmt) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			o.planLoop(x)
		case *If:
			o.planParallel(x.Then)
			o.planParallel(x.Else)
		}
	}
}

func (o *optimizer) planLoop(l *Loop) {
	if (l.Parallel || l.Doacross) && o.assignPar(l) {
		o.stats.ParSchedules++
		return // the schedule consumes the whole nest
	}
	o.planParallel(l.Body)
}

// assignPar analyzes a candidate loop and attaches the strongest legal,
// worthwhile schedule. Returns false to fall through to inner loops.
func (o *optimizer) assignPar(l *Loop) bool {
	trip := tripCount(l.From, l.To, l.Step)
	if trip < 2 || trip >= tripSaturated {
		// A saturated trip count means the span defeated int64
		// arithmetic; the distance and cost models are meaningless
		// there, so the nest stays sequential.
		return false
	}
	if inner := nest2D(l); inner != nil {
		return o.assignPar2D(l, inner)
	}
	if hasLoop(l.Body) {
		return false // deeper nests: only the 2-D shape is scheduled
	}
	return o.assignPar1D(l, trip)
}

// nest2D matches the tiled-schedule shape: the last body statement is
// an inner loop and everything before it is a per-row prefix of plain
// assignments. Both loops must step by +1.
func nest2D(l *Loop) *Loop {
	if l.Step != 1 || len(l.Body) == 0 {
		return nil
	}
	inner, ok := l.Body[len(l.Body)-1].(*Loop)
	if !ok || inner.Step != 1 {
		return nil
	}
	for _, s := range l.Body[:len(l.Body)-1] {
		if _, ok := s.(*Assign); !ok {
			return nil
		}
	}
	if hasLoop(inner.Body) {
		return nil
	}
	return inner
}

func hasLoop(stmts []Stmt) bool {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			return true
		case *If:
			if hasLoop(x.Then) || hasLoop(x.Else) {
				return true
			}
		}
	}
	return false
}

func (o *optimizer) assignPar2D(l, inner *Loop) bool {
	ni := tripCount(l.From, l.To, l.Step)
	nj := tripCount(inner.From, inner.To, inner.Step)
	if ni < 1 || nj < 2 || ni >= tripSaturated || nj >= tripSaturated {
		return false
	}
	pre, okPre := o.collectParAccesses(l.Body[:len(l.Body)-1])
	body, okBody := o.collectParAccesses(inner.Body)
	if !okPre || !okBody {
		return false
	}
	// Prefix subscripts may only involve the outer variable.
	for _, a := range pre {
		for _, f := range a.subs {
			if _, uses := f.t[inner.Var]; uses {
				return false
			}
		}
	}
	dists, ok := pairDistances(append(pre, body...), l.Var, inner.Var,
		loopRange{l.From, l.To, 1}, loopRange{inner.From, inner.To, 1}, len(pre))
	if !ok {
		return false
	}
	carried, rowIndep, nonneg := false, true, true
	for _, d := range dists {
		if d.di == 0 && d.dj == 0 && !d.prefix && !d.prePre {
			continue // loop-independent; statement order within a point holds
		}
		carried = true
		if d.prePre {
			// Cross-row prefix conflict: only the wavefront preserves
			// full row order, in either direction.
			rowIndep = false
			continue
		}
		if d.prefix {
			// Prefix dependences are directional (prefix first within
			// its row): a conflict with an earlier row's body breaks
			// every tiled schedule.
			if d.di < 0 {
				nonneg = false
			}
			if d.di != 0 {
				rowIndep = false
			}
			continue
		}
		if d.di < 0 || (d.di == 0 && d.dj < 0) {
			d.di, d.dj = -d.di, -d.dj
		}
		if d.di != 0 {
			rowIndep = false
		}
		if d.di < 0 || d.dj < 0 {
			nonneg = false
		}
	}
	work := estimateWork(inner.Body)
	tI, tJ := chooseTile(ni, nj)
	if l.Sten != nil && l.Sten.Dims == 2 {
		// Halo-fed tiling: the recognized footprint overrides the
		// generic occupancy heuristic. Legality is untouched — tile
		// sizes only reshape the schedule's unit of work.
		tI, tJ = chooseStencilTile(ni, nj, l.Sten)
	}
	switch {
	case !carried:
		// Dependence-free: cache-tiled, no synchronization.
		if !tileWorthwhile(ni, nj, work, tI, tJ, false) {
			return false
		}
		l.Par = &ParSchedule{Kind: ParTile, TileI: tI, TileJ: tJ}
		return true
	case rowIndep:
		// Only inner-carried dependences: rows are independent, so
		// full-width row bands need no synchronization and keep each
		// row's sequential order.
		if !tileWorthwhile(ni, nj, work, tI, nj, false) {
			return false
		}
		l.Par = &ParSchedule{Kind: ParTile, TileI: tI, TileJ: nj}
		return true
	case nonneg:
		// Regular carried dependences, all pointing right/down: tiles
		// on one anti-diagonal are independent, diagonals synchronize
		// through a barrier. A prefix conflict with the same or a later
		// row is fine (the column-0 tile of a row band runs before all
		// its other tiles).
		if !tileWorthwhile(ni, nj, work, tI, tJ, true) {
			return false
		}
		l.Par = &ParSchedule{Kind: ParWavefront, TileI: tI, TileJ: tJ}
		return true
	}
	return false
}

func (o *optimizer) assignPar1D(l *Loop, trip int64) bool {
	work := estimateWork(l.Body)
	if !parWorthwhile(trip, work) {
		return false
	}
	if l.Parallel {
		l.Par = &ParSchedule{Kind: ParShard}
		return true
	}
	// Doacross: constant-distance 1-D recurrence. All subscripts must
	// step uniformly with the loop so the distances are well defined.
	if l.Step != 1 {
		return false
	}
	acc, okAcc := o.collectParAccesses(l.Body)
	if !okAcc {
		return false
	}
	var g int64
	for i := range acc {
		for j := i; j < len(acc); j++ {
			if !acc[i].write && !acc[j].write {
				continue
			}
			d, kind := dist1D(&acc[i], &acc[j], l.Var, trip)
			switch kind {
			case distNone:
				continue
			case distUnknown:
				return false
			}
			if d < 0 {
				d = -d
			}
			if d != 0 {
				g = gcd(g, d)
			}
		}
	}
	switch {
	case g == 0:
		// No carried conflicts after all: plain sharding is legal.
		l.Par = &ParSchedule{Kind: ParShard}
	case g >= 2:
		l.Par = &ParSchedule{Kind: ParChains, Chains: g}
	default:
		return false
	}
	return true
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// --- access collection ---

// parAccess is one array access inside a candidate nest, with affine
// subscripts. prefix marks accesses from the per-row prefix statements.
type parAccess struct {
	arr    string
	write  bool
	prefix bool
	subs   []*linForm
}

// collectParAccesses gathers every array access under stmts; the bool
// is false when the statements are not schedulable: anything other
// than pure assignments and guards, accumulation, definedness-tracked
// arrays, or non-affine subscripts disqualifies the nest.
func (o *optimizer) collectParAccesses(stmts []Stmt) ([]parAccess, bool) {
	var out []parAccess
	ok := true
	var walkV func(e VExpr)
	var walkB func(e BExpr)
	addAccess := func(arr string, subs []IntExpr, write bool) {
		d := o.prog.Decl(arr)
		if d == nil || d.TrackDefs || len(subs) != d.B.Rank() {
			ok = false
			return
		}
		a := parAccess{arr: arr, write: write, subs: make([]*linForm, len(subs))}
		for i, s := range subs {
			f := intLin(s)
			if f == nil {
				ok = false
				return
			}
			a.subs[i] = f
		}
		out = append(out, a)
	}
	walkV = func(e VExpr) {
		switch x := e.(type) {
		case *ARef:
			if x.CheckDefined {
				ok = false
				return
			}
			addAccess(x.Array, x.Subs, false)
		case *VBin:
			walkV(x.L)
			walkV(x.R)
		case *VNeg:
			walkV(x.X)
		case *VCall:
			for _, a := range x.Args {
				walkV(a)
			}
		case *VCond:
			walkB(x.C)
			walkV(x.T)
			walkV(x.E)
		}
	}
	walkB = func(e BExpr) {
		switch x := e.(type) {
		case *BCmpFloat:
			walkV(x.L)
			walkV(x.R)
		case *BCmpInt:
		case *BAnd:
			walkB(x.L)
			walkB(x.R)
		case *BOr:
			walkB(x.L)
			walkB(x.R)
		case *BNot:
			walkB(x.X)
		}
	}
	var walkS func(list []Stmt)
	walkS = func(list []Stmt) {
		for _, s := range list {
			switch x := s.(type) {
			case *Assign:
				if x.Accumulate != nil || x.CheckCollision {
					ok = false
					return
				}
				addAccess(x.Array, x.Subs, true)
				walkV(x.Rhs)
			case *If:
				walkB(x.Cond)
				walkS(x.Then)
				walkS(x.Else)
			default:
				ok = false
				return
			}
		}
	}
	walkS(stmts)
	if !ok {
		return nil, false
	}
	return out, true
}

// --- distance extraction ---

// parDist is one dependence distance. For prefix conflicts di is the
// inner-statement row minus the prefix row; dj is meaningless then.
// prePre marks a cross-row conflict between two prefix statements —
// legal only under schedules that preserve row order.
type parDist struct {
	di, dj int64
	prefix bool
	prePre bool
}

// pairDistances computes the distance vector of every conflicting
// access pair over the (outerVar, innerVar) iteration space. The first
// nPre accesses are per-row prefix accesses. Returns ok=false when any
// pair's distance cannot be pinned to a unique constant vector — the
// uniform-dependence requirement of the tiled schedules.
func pairDistances(acc []parAccess, outerVar, innerVar string, ri, rj loopRange, nPre int) ([]parDist, bool) {
	for i := 0; i < nPre; i++ {
		acc[i].prefix = true
	}
	var out []parDist
	for i := range acc {
		for j := i; j < len(acc); j++ {
			a, b := &acc[i], &acc[j]
			if a.arr != b.arr || (!a.write && !b.write) {
				continue
			}
			if a.prefix && b.prefix {
				// Prefix statements of one row always keep their order,
				// but across rows only the wavefront preserves row order
				// (its column-0 tiles sit on distinct, increasing
				// diagonals). Flag any possible cross-row conflict so the
				// unordered schedules are ruled out.
				d1, kind := dist1D(a, b, outerVar, ri.trip())
				if kind == distNone || (kind == distExact && d1 == 0) {
					continue
				}
				out = append(out, parDist{di: d1, prePre: true})
				continue
			}
			if b.prefix {
				a, b = b, a
			}
			d, kind := dist2D(a, b, outerVar, innerVar, ri, rj)
			switch kind {
			case distNone:
				continue
			case distUnknown:
				return nil, false
			}
			d.prefix = a.prefix
			out = append(out, d)
		}
	}
	return out, true
}

type distKind uint8

const (
	distNone    distKind = iota // the accesses never conflict
	distExact                   // unique constant distance vector
	distUnknown                 // conflicts exist but distances vary
)

// parCon is one per-dimension conflict constraint: ai·di + aj·dj = rhs.
type parCon struct{ ai, aj, rhs int64 }

// dist2D solves, per dimension, ai·di + aj·dj = Δc for the unique
// distance (di,dj) = (iteration of b − iteration of a). Subscript
// coefficients must agree between the two accesses (uniform
// dependences); terms over enclosing loop variables must cancel. When a
// is a prefix access its inner-variable coefficient is zero and the
// second unknown is the absolute inner position of the conflict,
// range-checked instead of distance-checked.
func dist2D(a, b *parAccess, outerVar, innerVar string, ri, rj loopRange) (parDist, distKind) {
	ni, nj := ri.trip(), rj.trip()
	var cons []parCon
	for k := range a.subs {
		fa, fb := a.subs[k], b.subs[k]
		ai := fb.t[outerVar]
		aj := fb.t[innerVar]
		if fa.t[outerVar] != ai || (!a.prefix && fa.t[innerVar] != aj) {
			return parDist{}, distUnknown
		}
		// Every other variable (enclosing loops) must contribute
		// identically to both sides.
		for v, c := range fa.t {
			if v != outerVar && v != innerVar && fb.t[v] != c {
				return parDist{}, distUnknown
			}
		}
		for v, c := range fb.t {
			if v != outerVar && v != innerVar && fa.t[v] != c {
				return parDist{}, distUnknown
			}
		}
		rhs := fa.c - fb.c
		if ai == 0 && aj == 0 {
			if rhs != 0 {
				return parDist{}, distNone
			}
			continue
		}
		cons = append(cons, parCon{ai, aj, rhs})
	}
	if a.prefix {
		return solvePrefix(cons, ri, rj)
	}
	if len(cons) == 0 {
		// A constant element touched by every iteration pair: distances
		// take every value.
		return parDist{}, distUnknown
	}
	// Solve the first two independent constraints, verify the rest.
	var di, dj int64
	solved := false
	for x := 0; x < len(cons) && !solved; x++ {
		for y := x + 1; y < len(cons) && !solved; y++ {
			det := cons[x].ai*cons[y].aj - cons[y].ai*cons[x].aj
			if det == 0 {
				continue
			}
			pi := cons[x].rhs*cons[y].aj - cons[y].rhs*cons[x].aj
			pj := cons[x].ai*cons[y].rhs - cons[y].ai*cons[x].rhs
			if pi%det != 0 || pj%det != 0 {
				return parDist{}, distNone
			}
			di, dj = pi/det, pj/det
			solved = true
		}
	}
	if !solved {
		// All constraints parallel: a whole line of distances solves
		// the system, so the dependence is not uniform.
		return parDist{}, distUnknown
	}
	for _, c := range cons {
		if c.ai*di+c.aj*dj != c.rhs {
			return parDist{}, distNone
		}
	}
	if di <= -ni || di >= ni || dj <= -nj || dj >= nj {
		return parDist{}, distNone // unreachable within this nest
	}
	return parDist{di: di, dj: dj}, distExact
}

// solvePrefix resolves a prefix-vs-body conflict: the unknowns are the
// row distance di and the absolute inner variable value j* at which the
// body access touches the prefix element.
func solvePrefix(cons []parCon, ri, rj loopRange) (parDist, distKind) {
	ni := ri.trip()
	var di, jstar int64
	haveI, haveJ := false, false
	for _, c := range cons {
		switch {
		case c.ai != 0 && c.aj == 0:
			if c.rhs%c.ai != 0 {
				return parDist{}, distNone
			}
			v := c.rhs / c.ai
			if haveI && v != di {
				return parDist{}, distNone
			}
			di, haveI = v, true
		case c.ai == 0 && c.aj != 0:
			if c.rhs%c.aj != 0 {
				return parDist{}, distNone
			}
			v := c.rhs / c.aj
			if haveJ && v != jstar {
				return parDist{}, distNone
			}
			jstar, haveJ = v, true
		default: // mixed constraint: di and j* trade off, not uniform
			return parDist{}, distUnknown
		}
	}
	if !haveI || !haveJ {
		return parDist{}, distUnknown
	}
	if jstar < rj.from || jstar > rj.to {
		return parDist{}, distNone // conflict column outside the nest
	}
	if di <= -ni || di >= ni {
		return parDist{}, distNone
	}
	return parDist{di: di}, distExact
}

// dist1D is the one-variable analogue: a·d = Δc across every dimension.
func dist1D(a, b *parAccess, loopVar string, trip int64) (int64, distKind) {
	var d int64
	have := false
	for k := range a.subs {
		fa, fb := a.subs[k], b.subs[k]
		av := fb.t[loopVar]
		if fa.t[loopVar] != av {
			return 0, distUnknown
		}
		for v, c := range fa.t {
			if v != loopVar && fb.t[v] != c {
				return 0, distUnknown
			}
		}
		for v, c := range fb.t {
			if v != loopVar && fa.t[v] != c {
				return 0, distUnknown
			}
		}
		rhs := fa.c - fb.c
		if av == 0 {
			if rhs != 0 {
				return 0, distNone
			}
			continue
		}
		if rhs%av != 0 {
			return 0, distNone
		}
		v := rhs / av
		if have && v != d {
			return 0, distNone
		}
		d, have = v, true
	}
	if !have {
		return 0, distUnknown
	}
	if d <= -trip || d >= trip {
		return 0, distNone
	}
	return d, distExact
}
