// Package affine extracts linear (affine) forms from subscript
// expressions and normalizes loop nests, the front half of the paper's
// subscript analysis (section 6).
//
// A subscript expression is usable by the dependence tests when it is
// linear in the surrounding loop indices with all other quantities
// (scalar parameters, literals) folding to integer constants:
//
//	f(i1..id) = a0 + Σ ak·ik
//
// The paper, like the imperative-compiler literature it adapts, assumes
// normalized loops: every index runs over [1..M] with stride 1. Real
// generators are arbitrary arithmetic sequences `[first, second ..
// last]`; Nest.Normalize rewrites an affine form over source indices
// into coefficients over the normalized indices.
//
// The analysis is performed with scalar parameters bound to concrete
// values (the paper's "loop bounds statically known" assumption); the
// compiler pipeline re-analyzes per parameter binding.
package affine
