package affine

import (
	"errors"
	"fmt"

	"arraycomp/internal/lang"
)

// ErrNotStatic is wrapped by EvalInt errors: the expression depends on
// something other than integer literals and bound scalar parameters.
var ErrNotStatic = errors.New("affine: expression is not a static integer")

// EvalInt evaluates a compile-time integer expression (array bounds,
// generator endpoints) under the given parameter environment.
func EvalInt(e lang.Expr, env map[string]int64) (int64, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return x.Value, nil
	case *lang.FloatLit:
		return 0, fmt.Errorf("%w: float literal %s at %s", ErrNotStatic, x.Literal, x.Pos())
	case *lang.Var:
		if v, ok := env[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("%w: unbound variable %q at %s", ErrNotStatic, x.Name, x.Pos())
	case *lang.UnOp:
		if x.Op != lang.OpNeg {
			return 0, fmt.Errorf("%w: operator %s at %s", ErrNotStatic, x.Op, x.Pos())
		}
		v, err := EvalInt(x.X, env)
		if err != nil {
			return 0, err
		}
		return -v, nil
	case *lang.BinOp:
		l, err := EvalInt(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := EvalInt(x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case lang.OpAdd:
			return l + r, nil
		case lang.OpSub:
			return l - r, nil
		case lang.OpMul:
			return l * r, nil
		case lang.OpDiv:
			if r == 0 {
				return 0, fmt.Errorf("affine: division by zero at %s", x.Pos())
			}
			return l / r, nil
		case lang.OpMod:
			if r == 0 {
				return 0, fmt.Errorf("affine: mod by zero at %s", x.Pos())
			}
			return l % r, nil
		}
		return 0, fmt.Errorf("%w: operator %s at %s", ErrNotStatic, x.Op, x.Pos())
	case *lang.Call:
		args := make([]int64, len(x.Args))
		for i, a := range x.Args {
			v, err := EvalInt(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		switch x.Fn {
		case "abs":
			if len(args) == 1 {
				if args[0] < 0 {
					return -args[0], nil
				}
				return args[0], nil
			}
		case "min":
			if len(args) == 2 {
				if args[0] < args[1] {
					return args[0], nil
				}
				return args[1], nil
			}
		case "max":
			if len(args) == 2 {
				if args[0] > args[1] {
					return args[0], nil
				}
				return args[1], nil
			}
		}
		return 0, fmt.Errorf("%w: call %s/%d at %s", ErrNotStatic, x.Fn, len(x.Args), x.Pos())
	case *lang.Let:
		inner := make(map[string]int64, len(env)+len(x.Binds))
		for k, v := range env {
			inner[k] = v
		}
		for _, b := range x.Binds {
			v, err := EvalInt(b.Rhs, env)
			if err != nil {
				return 0, err
			}
			inner[b.Name] = v
		}
		return EvalInt(x.Body, inner)
	case *lang.Cond:
		c, err := EvalBool(x.C, env)
		if err != nil {
			return 0, err
		}
		if c {
			return EvalInt(x.T, env)
		}
		return EvalInt(x.E, env)
	}
	return 0, fmt.Errorf("%w: %T", ErrNotStatic, e)
}

// EvalBool evaluates a compile-time boolean expression.
func EvalBool(e lang.Expr, env map[string]int64) (bool, error) {
	switch x := e.(type) {
	case *lang.BinOp:
		if x.Op.IsComparison() {
			l, err := EvalInt(x.L, env)
			if err != nil {
				return false, err
			}
			r, err := EvalInt(x.R, env)
			if err != nil {
				return false, err
			}
			switch x.Op {
			case lang.OpEq:
				return l == r, nil
			case lang.OpNe:
				return l != r, nil
			case lang.OpLt:
				return l < r, nil
			case lang.OpLe:
				return l <= r, nil
			case lang.OpGt:
				return l > r, nil
			case lang.OpGe:
				return l >= r, nil
			}
		}
		if x.Op.IsLogical() {
			l, err := EvalBool(x.L, env)
			if err != nil {
				return false, err
			}
			r, err := EvalBool(x.R, env)
			if err != nil {
				return false, err
			}
			if x.Op == lang.OpAnd {
				return l && r, nil
			}
			return l || r, nil
		}
	case *lang.UnOp:
		if x.Op == lang.OpNot {
			v, err := EvalBool(x.X, env)
			if err != nil {
				return false, err
			}
			return !v, nil
		}
	}
	return false, fmt.Errorf("%w: not a static boolean: %T", ErrNotStatic, e)
}
