package affine

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"arraycomp/internal/lang"
)

// ErrNotAffine is wrapped by FromExpr errors when a subscript is not
// linear in the loop indices. Callers treat non-affine subscripts
// pessimistically (assume a dependence with every other reference).
var ErrNotAffine = errors.New("affine: subscript is not affine in the loop indices")

// Form is a0 + Σ Coeff[v]·v over loop index variables v. Entries with
// zero coefficient are never stored.
type Form struct {
	Const int64
	Coeff map[string]int64
}

// Constant builds a constant form.
func Constant(c int64) Form { return Form{Const: c} }

// IndexVar builds the form 1·v.
func IndexVar(v string) Form {
	return Form{Coeff: map[string]int64{v: 1}}
}

// CoeffOf returns the coefficient of v (0 if absent).
func (f Form) CoeffOf(v string) int64 { return f.Coeff[v] }

// IsConstant reports whether no index variable appears.
func (f Form) IsConstant() bool { return len(f.Coeff) == 0 }

// Vars returns the index variables with nonzero coefficient, sorted.
func (f Form) Vars() []string {
	out := make([]string, 0, len(f.Coeff))
	for v := range f.Coeff {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (f Form) clone() Form {
	c := Form{Const: f.Const, Coeff: make(map[string]int64, len(f.Coeff))}
	for k, v := range f.Coeff {
		c.Coeff[k] = v
	}
	return c
}

func (f *Form) addTerm(v string, c int64) {
	if c == 0 {
		return
	}
	if f.Coeff == nil {
		f.Coeff = map[string]int64{}
	}
	nc := f.Coeff[v] + c
	if nc == 0 {
		delete(f.Coeff, v)
	} else {
		f.Coeff[v] = nc
	}
}

// Add returns f + g.
func (f Form) Add(g Form) Form {
	out := f.clone()
	out.Const += g.Const
	for v, c := range g.Coeff {
		out.addTerm(v, c)
	}
	return out
}

// Sub returns f − g.
func (f Form) Sub(g Form) Form {
	out := f.clone()
	out.Const -= g.Const
	for v, c := range g.Coeff {
		out.addTerm(v, -c)
	}
	return out
}

// Scale returns k·f.
func (f Form) Scale(k int64) Form {
	if k == 0 {
		return Form{}
	}
	out := Form{Const: f.Const * k, Coeff: make(map[string]int64, len(f.Coeff))}
	for v, c := range f.Coeff {
		out.Coeff[v] = c * k
	}
	return out
}

// Eval evaluates the form at the given index values.
func (f Form) Eval(idx map[string]int64) int64 {
	out := f.Const
	for v, c := range f.Coeff {
		out += c * idx[v]
	}
	return out
}

// String renders e.g. "3 + 2·i − j".
func (f Form) String() string {
	var b strings.Builder
	b.WriteString(strconv.FormatInt(f.Const, 10))
	for _, v := range f.Vars() {
		c := f.Coeff[v]
		if c < 0 {
			b.WriteString(" - ")
			c = -c
		} else {
			b.WriteString(" + ")
		}
		if c != 1 {
			fmt.Fprintf(&b, "%d*", c)
		}
		b.WriteString(v)
	}
	return b.String()
}

// Equal reports structural equality of forms.
func (f Form) Equal(g Form) bool {
	if f.Const != g.Const || len(f.Coeff) != len(g.Coeff) {
		return false
	}
	for v, c := range f.Coeff {
		if g.Coeff[v] != c {
			return false
		}
	}
	return true
}

// FromExpr extracts the affine form of a subscript expression. isIndex
// says which variable names are loop indices; every other variable must
// be bound in env (a scalar parameter). Let-bound names are handled by
// extracting their right-hand sides as forms.
func FromExpr(e lang.Expr, isIndex func(string) bool, env map[string]int64) (Form, error) {
	return fromExpr(e, isIndex, env, nil)
}

func fromExpr(e lang.Expr, isIndex func(string) bool, env map[string]int64, lets map[string]lang.Expr) (Form, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return Constant(x.Value), nil
	case *lang.Var:
		if rhs, ok := lets[x.Name]; ok {
			// Lazy extraction: only referenced bindings need to be
			// affine (a binding holding an array selection is fine as
			// long as subscripts never mention it). Shadow the name to
			// avoid self-recursion.
			inner := make(map[string]lang.Expr, len(lets))
			for k, v := range lets {
				if k != x.Name {
					inner[k] = v
				}
			}
			return fromExpr(rhs, isIndex, env, inner)
		}
		if isIndex(x.Name) {
			return IndexVar(x.Name), nil
		}
		if v, ok := env[x.Name]; ok {
			return Constant(v), nil
		}
		return Form{}, fmt.Errorf("%w: unbound variable %q at %s", ErrNotAffine, x.Name, x.Pos())
	case *lang.UnOp:
		if x.Op != lang.OpNeg {
			return Form{}, fmt.Errorf("%w: operator %s at %s", ErrNotAffine, x.Op, x.Pos())
		}
		f, err := fromExpr(x.X, isIndex, env, lets)
		if err != nil {
			return Form{}, err
		}
		return f.Scale(-1), nil
	case *lang.BinOp:
		l, lerr := fromExpr(x.L, isIndex, env, lets)
		r, rerr := fromExpr(x.R, isIndex, env, lets)
		switch x.Op {
		case lang.OpAdd:
			if lerr != nil {
				return Form{}, lerr
			}
			if rerr != nil {
				return Form{}, rerr
			}
			return l.Add(r), nil
		case lang.OpSub:
			if lerr != nil {
				return Form{}, lerr
			}
			if rerr != nil {
				return Form{}, rerr
			}
			return l.Sub(r), nil
		case lang.OpMul:
			if lerr != nil {
				return Form{}, lerr
			}
			if rerr != nil {
				return Form{}, rerr
			}
			// Linear only when at least one side is constant.
			if l.IsConstant() {
				return r.Scale(l.Const), nil
			}
			if r.IsConstant() {
				return l.Scale(r.Const), nil
			}
			return Form{}, fmt.Errorf("%w: product of index expressions at %s", ErrNotAffine, x.Pos())
		case lang.OpDiv, lang.OpMod:
			// Affine only when both sides fold to constants.
			if lerr == nil && rerr == nil && l.IsConstant() && r.IsConstant() {
				if r.Const == 0 {
					return Form{}, fmt.Errorf("affine: division by zero at %s", x.Pos())
				}
				if x.Op == lang.OpDiv {
					return Constant(l.Const / r.Const), nil
				}
				return Constant(l.Const % r.Const), nil
			}
			return Form{}, fmt.Errorf("%w: %s of index expressions at %s", ErrNotAffine, x.Op, x.Pos())
		}
		return Form{}, fmt.Errorf("%w: operator %s at %s", ErrNotAffine, x.Op, x.Pos())
	case *lang.Let:
		inner := make(map[string]lang.Expr, len(lets)+len(x.Binds))
		for k, v := range lets {
			inner[k] = v
		}
		for _, b := range x.Binds {
			inner[b.Name] = b.Rhs
		}
		return fromExpr(x.Body, isIndex, env, inner)
	}
	return Form{}, fmt.Errorf("%w: %T at %s", ErrNotAffine, e, e.Pos())
}
