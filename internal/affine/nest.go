package affine

import (
	"fmt"

	"arraycomp/internal/lang"
)

// Loop describes one generator of a nest in source terms: the index
// variable runs first, first+stride, …, through last (inclusive when
// hit exactly).
type Loop struct {
	Var    string
	First  int64
	Stride int64
	Last   int64
}

// Trip returns the iteration count of the loop (0 when empty).
func (l Loop) Trip() int64 {
	if l.Stride == 0 {
		return 0
	}
	span := l.Last - l.First
	if l.Stride > 0 {
		if span < 0 {
			return 0
		}
		return span/l.Stride + 1
	}
	if span > 0 {
		return 0
	}
	return span/l.Stride + 1
}

// ValueAt returns the source index value at normalized position
// p ∈ [1..Trip].
func (l Loop) ValueAt(p int64) int64 {
	return l.First + (p-1)*l.Stride
}

// String renders the generator range.
func (l Loop) String() string {
	if l.Stride == 1 {
		return fmt.Sprintf("%s <- [%d..%d]", l.Var, l.First, l.Last)
	}
	return fmt.Sprintf("%s <- [%d,%d..%d]", l.Var, l.First, l.First+l.Stride, l.Last)
}

// LoopFromGenerator evaluates a generator's endpoints under env and
// returns the concrete Loop. The paper's normalization requirement
// ("the surrounding loops can always be put in normalized form") is
// realized here: any arithmetic-sequence generator is accepted.
func LoopFromGenerator(g *lang.Generator, env map[string]int64) (Loop, error) {
	first, err := EvalInt(g.First, env)
	if err != nil {
		return Loop{}, fmt.Errorf("generator %s first: %w", g.Var, err)
	}
	last, err := EvalInt(g.Last, env)
	if err != nil {
		return Loop{}, fmt.Errorf("generator %s last: %w", g.Var, err)
	}
	stride := int64(1)
	if g.Second != nil {
		second, err := EvalInt(g.Second, env)
		if err != nil {
			return Loop{}, fmt.Errorf("generator %s second: %w", g.Var, err)
		}
		stride = second - first
		if stride == 0 {
			return Loop{}, fmt.Errorf("generator %s has zero stride", g.Var)
		}
	}
	return Loop{Var: g.Var, First: first, Stride: stride, Last: last}, nil
}

// Nest is a loop nest, outermost first.
type Nest []Loop

// Index returns the position of the loop binding v, or −1.
func (n Nest) Index(v string) int {
	for i, l := range n {
		if l.Var == v {
			return i
		}
	}
	return -1
}

// Trips returns the per-loop iteration counts.
func (n Nest) Trips() []int64 {
	out := make([]int64, len(n))
	for i, l := range n {
		out[i] = l.Trip()
	}
	return out
}

// NormalizedRef is an affine subscript rewritten over the normalized
// indices of a nest: value = Const + Σ Coeff[k]·p_k with p_k ∈
// [1..n[k].Trip()]. Coefficients are positionally aligned with the
// nest.
type NormalizedRef struct {
	Const int64
	Coeff []int64
}

// Eval evaluates the normalized form at normalized positions.
func (r NormalizedRef) Eval(pos []int64) int64 {
	out := r.Const
	for k, c := range r.Coeff {
		out += c * pos[k]
	}
	return out
}

// evalSatBound is the saturation range for EvalSat, matching the
// dependence tests' ±2^62 working range.
const evalSatBound = int64(1) << 62

// EvalSat evaluates the normalized form with saturating arithmetic,
// clamping into [−2^62, 2^62−1]. The boolean reports whether the
// result is exact; certification layers that re-evaluate subscripts
// at witness points must discard (not trust) inexact evaluations.
func (r NormalizedRef) EvalSat(pos []int64) (int64, bool) {
	clamp := func(v int64) (int64, bool) {
		if v >= evalSatBound {
			return evalSatBound - 1, false
		}
		if v < -evalSatBound {
			return -evalSatBound, false
		}
		return v, true
	}
	out, exact := clamp(r.Const)
	for k, c := range r.Coeff {
		if c == 0 {
			continue
		}
		p := pos[k]
		// |c|, |p| ≤ 2^62 after clamping, so test the product bound
		// before multiplying.
		cc, ok := clamp(c)
		pp, ok2 := clamp(p)
		exact = exact && ok && ok2
		var term int64
		if cc != 0 && pp != 0 {
			aa, bb := cc, pp
			if aa < 0 {
				aa = -aa
			}
			if bb < 0 {
				bb = -bb
			}
			if aa > (evalSatBound-1)/bb {
				exact = false
				if (cc > 0) == (pp > 0) {
					term = evalSatBound - 1
				} else {
					term = -evalSatBound
				}
			} else {
				term = aa * bb
				if (cc > 0) != (pp > 0) {
					term = -term
				}
			}
		}
		var ok3 bool
		out, ok3 = clamp(out + term) // |out|+|term| ≤ 2^63−2: no wrap
		exact = exact && ok3
	}
	return out, exact
}

// Normalize rewrites a source-variable affine form over the nest's
// normalized indices: substituting v = first + (p−1)·stride for each
// loop variable v. Variables in f that are not bound by the nest are
// an error (the caller should have folded parameters into constants).
func (n Nest) Normalize(f Form) (NormalizedRef, error) {
	out := NormalizedRef{Const: f.Const, Coeff: make([]int64, len(n))}
	for v, c := range f.Coeff {
		k := n.Index(v)
		if k < 0 {
			return NormalizedRef{}, fmt.Errorf("affine: variable %q is not bound by the loop nest", v)
		}
		l := n[k]
		// c·v = c·(first − stride) + (c·stride)·p
		out.Const += c * (l.First - l.Stride)
		out.Coeff[k] += c * l.Stride
	}
	return out, nil
}
