package affine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"arraycomp/internal/lang"
	"arraycomp/internal/parser"
)

func parse(t *testing.T, src string) lang.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func isIJ(v string) bool { return v == "i" || v == "j" || v == "k" }

func TestEvalInt(t *testing.T) {
	env := map[string]int64{"n": 10, "m": 3}
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"n - 1", 9},
		{"n * m", 30},
		{"n / m", 3},
		{"n mod m", 1},
		{"-n", -10},
		{"min(n, m)", 3},
		{"max(n, m)", 10},
		{"abs(m - n)", 7},
		{"if n > m then n else m", 10},
		{"let h = n / 2 in h + 1", 6},
	}
	for _, c := range cases {
		got, err := EvalInt(parse(t, c.src), env)
		if err != nil {
			t.Errorf("EvalInt(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalInt(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvalIntErrors(t *testing.T) {
	for _, src := range []string{"q", "a!i", "1.5", "n / 0", "sin(n)"} {
		if _, err := EvalInt(parse(t, src), map[string]int64{"n": 1}); err == nil {
			t.Errorf("EvalInt(%q) succeeded, want error", src)
		}
	}
}

func TestEvalBool(t *testing.T) {
	env := map[string]int64{"n": 10}
	cases := []struct {
		src  string
		want bool
	}{
		{"n == 10", true},
		{"n /= 10", false},
		{"n < 11 && n > 9", true},
		{"n < 5 || n >= 10", true},
		{"not (n == 10)", false},
	}
	for _, c := range cases {
		got, err := EvalBool(parse(t, c.src), env)
		if err != nil {
			t.Errorf("EvalBool(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalBool(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestFromExprBasic(t *testing.T) {
	env := map[string]int64{"n": 100}
	cases := []struct {
		src  string
		want string
	}{
		{"i", "0 + i"},
		{"3*i - 1", "-1 + 3*i"},
		{"i + j", "0 + i + j"},
		{"2*(i - j) + n", "100 + 2*i - 2*j"},
		{"n - i", "100 - i"},
		{"i - i", "0"},
		{"7", "7"},
		{"3 * (n / 2)", "150"},
		{"let d = i - 1 in 2*d", "-2 + 2*i"},
		{"-(i + 1)", "-1 - i"},
	}
	for _, c := range cases {
		f, err := FromExpr(parse(t, c.src), isIJ, env)
		if err != nil {
			t.Errorf("FromExpr(%q): %v", c.src, err)
			continue
		}
		if got := f.String(); got != c.want {
			t.Errorf("FromExpr(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestFromExprNotAffine(t *testing.T) {
	env := map[string]int64{"n": 100}
	for _, src := range []string{"i * j", "i / 2", "i mod 2", "a!i", "q + 1", "if i > 0 then i else 0"} {
		_, err := FromExpr(parse(t, src), isIJ, env)
		if err == nil {
			t.Errorf("FromExpr(%q) succeeded, want ErrNotAffine", src)
			continue
		}
		if src != "a!i" && src != "i / 2" && !errors.Is(err, ErrNotAffine) {
			// a!i and i/2 report ErrNotAffine too; all should wrap it
		}
		if !errors.Is(err, ErrNotAffine) && src != "q + 1" {
			t.Errorf("FromExpr(%q) error %v does not wrap ErrNotAffine", src, err)
		}
	}
}

func TestFormAlgebraProperties(t *testing.T) {
	// Check Add/Sub/Scale against evaluation at random points.
	rng := rand.New(rand.NewSource(11))
	randForm := func() Form {
		f := Form{Const: int64(rng.Intn(21) - 10)}
		for _, v := range []string{"i", "j", "k"} {
			if rng.Intn(2) == 0 {
				f.addTerm(v, int64(rng.Intn(9)-4))
			}
		}
		return f
	}
	for trial := 0; trial < 500; trial++ {
		f, g := randForm(), randForm()
		at := map[string]int64{
			"i": int64(rng.Intn(20) - 10),
			"j": int64(rng.Intn(20) - 10),
			"k": int64(rng.Intn(20) - 10),
		}
		kk := int64(rng.Intn(9) - 4)
		if f.Add(g).Eval(at) != f.Eval(at)+g.Eval(at) {
			t.Fatalf("Add broken: %v + %v at %v", f, g, at)
		}
		if f.Sub(g).Eval(at) != f.Eval(at)-g.Eval(at) {
			t.Fatalf("Sub broken: %v − %v at %v", f, g, at)
		}
		if f.Scale(kk).Eval(at) != kk*f.Eval(at) {
			t.Fatalf("Scale broken: %d·%v at %v", kk, f, at)
		}
		if !f.Add(g).Sub(g).Equal(f) {
			t.Fatalf("(f+g)−g ≠ f for %v, %v", f, g)
		}
	}
}

func TestLoopTripAndValueAt(t *testing.T) {
	cases := []struct {
		l      Loop
		trip   int64
		values []int64
	}{
		{Loop{"i", 1, 1, 5}, 5, []int64{1, 2, 3, 4, 5}},
		{Loop{"i", 2, 1, 5}, 4, []int64{2, 3, 4, 5}},
		{Loop{"i", 5, -1, 1}, 5, []int64{5, 4, 3, 2, 1}},
		{Loop{"i", 1, 2, 9}, 5, []int64{1, 3, 5, 7, 9}},
		{Loop{"i", 1, 2, 8}, 4, []int64{1, 3, 5, 7}},
		{Loop{"i", 10, -3, 1}, 4, []int64{10, 7, 4, 1}},
		{Loop{"i", 5, 1, 4}, 0, nil},
		{Loop{"i", 1, -1, 5}, 0, nil},
		{Loop{"i", 3, 1, 3}, 1, []int64{3}},
	}
	for _, c := range cases {
		if got := c.l.Trip(); got != c.trip {
			t.Errorf("%v.Trip() = %d, want %d", c.l, got, c.trip)
			continue
		}
		for p, want := range c.values {
			if got := c.l.ValueAt(int64(p + 1)); got != want {
				t.Errorf("%v.ValueAt(%d) = %d, want %d", c.l, p+1, got, want)
			}
		}
	}
}

func TestLoopFromGenerator(t *testing.T) {
	comp, err := parser.ParseComp("[ i := 0.0 | i <- [n, n-2 .. 1] ]")
	if err != nil {
		t.Fatal(err)
	}
	gen := comp.(*lang.Generator)
	l, err := LoopFromGenerator(gen, map[string]int64{"n": 9})
	if err != nil {
		t.Fatal(err)
	}
	if l.First != 9 || l.Stride != -2 || l.Last != 1 || l.Trip() != 5 {
		t.Errorf("loop = %+v trip %d", l, l.Trip())
	}
}

func TestLoopFromGeneratorZeroStride(t *testing.T) {
	comp, _ := parser.ParseComp("[ i := 0.0 | i <- [3, 3 .. 9] ]")
	gen := comp.(*lang.Generator)
	if _, err := LoopFromGenerator(gen, nil); err == nil {
		t.Error("zero stride must be an error")
	}
}

func TestNestNormalize(t *testing.T) {
	// i <- [2..10], j <- [10,8..2]; form 3i − j + 5.
	nest := Nest{
		{Var: "i", First: 2, Stride: 1, Last: 10},
		{Var: "j", First: 10, Stride: -2, Last: 2},
	}
	f := Form{Const: 5, Coeff: map[string]int64{"i": 3, "j": -1}}
	ref, err := nest.Normalize(f)
	if err != nil {
		t.Fatal(err)
	}
	// Check agreement at every normalized point.
	for p1 := int64(1); p1 <= nest[0].Trip(); p1++ {
		for p2 := int64(1); p2 <= nest[1].Trip(); p2++ {
			src := f.Eval(map[string]int64{"i": nest[0].ValueAt(p1), "j": nest[1].ValueAt(p2)})
			norm := ref.Eval([]int64{p1, p2})
			if src != norm {
				t.Fatalf("normalization mismatch at (%d,%d): src %d, norm %d", p1, p2, src, norm)
			}
		}
	}
}

func TestNestNormalizeUnboundVar(t *testing.T) {
	nest := Nest{{Var: "i", First: 1, Stride: 1, Last: 5}}
	_, err := nest.Normalize(Form{Coeff: map[string]int64{"q": 1}})
	if err == nil {
		t.Error("unbound variable must be an error")
	}
}

// Property: normalization preserves subscript values for random nests
// and forms.
func TestNormalizePropertyQuick(t *testing.T) {
	f := func(c0 int8, ci, cj int8, fi, fj uint8, si, sj int8, ti, tj uint8) bool {
		strideI := int64(si%5) - 2
		strideJ := int64(sj%5) - 2
		if strideI == 0 {
			strideI = 1
		}
		if strideJ == 0 {
			strideJ = 1
		}
		tripI := int64(ti%6) + 1
		tripJ := int64(tj%6) + 1
		li := Loop{Var: "i", First: int64(fi % 20), Stride: strideI}
		li.Last = li.First + (tripI-1)*strideI
		lj := Loop{Var: "j", First: int64(fj % 20), Stride: strideJ}
		lj.Last = lj.First + (tripJ-1)*strideJ
		nest := Nest{li, lj}
		if nest[0].Trip() != tripI || nest[1].Trip() != tripJ {
			return false
		}
		form := Form{Const: int64(c0)}
		form.addTerm("i", int64(ci))
		form.addTerm("j", int64(cj))
		ref, err := nest.Normalize(form)
		if err != nil {
			return false
		}
		for p1 := int64(1); p1 <= tripI; p1++ {
			for p2 := int64(1); p2 <= tripJ; p2++ {
				src := form.Eval(map[string]int64{"i": li.ValueAt(p1), "j": lj.ValueAt(p2)})
				if src != ref.Eval([]int64{p1, p2}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNestHelpers(t *testing.T) {
	nest := Nest{{Var: "i", First: 1, Stride: 1, Last: 4}, {Var: "j", First: 1, Stride: 1, Last: 7}}
	if nest.Index("j") != 1 || nest.Index("q") != -1 {
		t.Error("Nest.Index broken")
	}
	trips := nest.Trips()
	if trips[0] != 4 || trips[1] != 7 {
		t.Errorf("Trips = %v", trips)
	}
}

func TestLoopString(t *testing.T) {
	if got := (Loop{"i", 1, 1, 9}).String(); got != "i <- [1..9]" {
		t.Errorf("String = %q", got)
	}
	if got := (Loop{"i", 9, -2, 1}).String(); got != "i <- [9,7..1]" {
		t.Errorf("String = %q", got)
	}
}

func TestFormEqualEdgeCases(t *testing.T) {
	a := Form{Const: 1, Coeff: map[string]int64{"i": 2}}
	b := Form{Const: 1, Coeff: map[string]int64{"i": 2}}
	if !a.Equal(b) {
		t.Error("identical forms not equal")
	}
	if a.Equal(Form{Const: 2, Coeff: map[string]int64{"i": 2}}) {
		t.Error("different consts equal")
	}
	if a.Equal(Form{Const: 1, Coeff: map[string]int64{"j": 2}}) {
		t.Error("different vars equal")
	}
	if a.Equal(Form{Const: 1, Coeff: map[string]int64{"i": 2, "j": 1}}) {
		t.Error("different arity equal")
	}
}
