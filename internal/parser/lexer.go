package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// Error is a parse or lex error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	err  *Error
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) fail(line, col int, format string, args ...any) {
	if l.err == nil {
		l.err = &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '\'' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// skipBlanks consumes whitespace and comments (-- to end of line and
// {- ... -} blocks, which may nest).
func (l *lexer) skipBlanks() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peekByteAt(1) == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '{' && l.peekByteAt(1) == '-':
			line, col := l.line, l.col
			depth := 0
			for l.pos < len(l.src) {
				if l.peekByte() == '{' && l.peekByteAt(1) == '-' {
					depth++
					l.advance()
					l.advance()
				} else if l.peekByte() == '-' && l.peekByteAt(1) == '}' {
					depth--
					l.advance()
					l.advance()
					if depth == 0 {
						break
					}
				} else {
					l.advance()
				}
			}
			if depth != 0 {
				l.fail(line, col, "unterminated block comment")
				return
			}
		default:
			return
		}
	}
}

// next scans the next token.
func (l *lexer) next() token {
	l.skipBlanks()
	line, col := l.line, l.col
	mk := func(k kind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	if l.pos >= len(l.src) || l.err != nil {
		return mk(tEOF, "")
	}
	c := l.peekByte()
	switch {
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		// A '.' continues a float only when followed by a digit; "1.."
		// is INT DOTDOT.
		isFloat := false
		if l.peekByte() == '.' && isDigit(l.peekByteAt(1)) {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		if l.peekByte() == 'e' || l.peekByte() == 'E' {
			save := l.pos
			j := l.pos + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && isDigit(l.src[j]) {
				isFloat = true
				for l.pos < j {
					l.advance()
				}
				for l.pos < len(l.src) && isDigit(l.peekByte()) {
					l.advance()
				}
			} else {
				l.pos = save
			}
		}
		text := l.src[start:l.pos]
		if isFloat {
			return mk(tFloat, text)
		}
		return mk(tInt, text)
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if text == "letrec" && l.peekByte() == '*' {
			l.advance()
			return mk(tKwLetrecStar, "letrec*")
		}
		if k, ok := keywords[text]; ok {
			return mk(k, text)
		}
		return mk(tIdent, text)
	}
	two := func(k kind, s string) token {
		l.advance()
		l.advance()
		return mk(k, s)
	}
	one := func(k kind) token {
		l.advance()
		return mk(k, string(c))
	}
	rest := l.src[l.pos:]
	switch {
	case strings.HasPrefix(rest, "[*"):
		return two(tLBrackStar, "[*")
	case strings.HasPrefix(rest, "*]"):
		return two(tStarRBrack, "*]")
	case strings.HasPrefix(rest, ":="):
		return two(tAssignSV, ":=")
	case strings.HasPrefix(rest, "<-"):
		return two(tArrow, "<-")
	case strings.HasPrefix(rest, ".."):
		return two(tDotDot, "..")
	case strings.HasPrefix(rest, "++"):
		return two(tPlusPlus, "++")
	case strings.HasPrefix(rest, "=="):
		return two(tEq, "==")
	case strings.HasPrefix(rest, "/="):
		return two(tNe, "/=")
	case strings.HasPrefix(rest, "<="):
		return two(tLe, "<=")
	case strings.HasPrefix(rest, ">="):
		return two(tGe, ">=")
	case strings.HasPrefix(rest, "&&"):
		return two(tAndAnd, "&&")
	case strings.HasPrefix(rest, "||"):
		return two(tOrOr, "||")
	}
	switch c {
	case '(':
		return one(tLParen)
	case ')':
		return one(tRParen)
	case '[':
		return one(tLBrack)
	case ']':
		return one(tRBrack)
	case ',':
		return one(tComma)
	case ';':
		return one(tSemi)
	case '!':
		return one(tBang)
	case '|':
		return one(tBar)
	case '+':
		return one(tPlus)
	case '-':
		return one(tMinus)
	case '*':
		return one(tStar)
	case '/':
		return one(tSlash)
	case '<':
		return one(tLt)
	case '>':
		return one(tGt)
	case '=':
		return one(tEquals)
	}
	l.fail(line, col, "unexpected character %q", string(c))
	return mk(tEOF, "")
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, *Error) {
	l := newLexer(src)
	var toks []token
	for {
		t := l.next()
		if l.err != nil {
			return nil, l.err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}
