// Package parser turns the paper's concrete array-comprehension syntax
// into lang ASTs. The grammar covers the fragment the paper uses:
//
//	program  = {"param" idents ";"} ("letrec*"|"letrec") def {";" def} [";"] "in" ident
//	         | def
//	def      = ident "=" rhs
//	rhs      = "array" bounds comp
//	         | "accumArray" combiner atom bounds comp
//	         | "bigupd" ident comp
//	comp     = catom {"++" catom}
//	catom    = "[*" comp "|" quals "*]"
//	         | "[" svpair ("|" quals "]" | {"," svpair} "]")
//	         | "(" comp ")" ["where" binds]
//	         | "let" binds "in" comp
//	qual     = ident "<-" "[" expr ["," expr] ".." expr "]"  |  expr
//	svpair   = subs ":=" expr ["where" binds]
//
// Expressions have Haskell-like precedence: || < && < comparisons <
// additive < multiplicative < unary < postfix (!).
package parser

import (
	"fmt"
	"sort"
	"strconv"

	"arraycomp/internal/lang"
)

type parser struct {
	toks []token
	i    int
}

// bail aborts the parse with a positioned error; recovered at the API
// boundary (the panic/recover-within-a-package idiom).
func (p *parser) bail(t token, format string, args ...any) {
	panic(&Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peekAt(k int) token {
	if p.i+k >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.i+k]
}

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *parser) got(k kind) bool {
	if p.peek().kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k kind) token {
	t := p.peek()
	if t.kind != k {
		p.bail(t, "expected %s, found %s", k, t)
	}
	return p.next()
}

func pos(t token) lang.Pos { return lang.Pos{Line: t.line, Col: t.col} }

// recoverError converts a bail panic into an error return.
func recoverError(err *error) {
	if r := recover(); r != nil {
		if pe, ok := r.(*Error); ok {
			*err = pe
			return
		}
		panic(r)
	}
}

// ParseProgram parses a complete program. Scalar parameters may be
// declared with `param n, m;`; any undeclared free scalar variable is
// inferred as a parameter.
func ParseProgram(src string) (prog *lang.Program, err error) {
	defer recoverError(&err)
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	prog = p.parseProgram()
	p.expect(tEOF)
	inferParams(prog)
	return prog, nil
}

// ParseDef parses a single array definition (`name = array … …`).
func ParseDef(src string) (def *lang.ArrayDef, err error) {
	defer recoverError(&err)
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	def = p.parseDef()
	p.expect(tEOF)
	return def, nil
}

// ParseExpr parses a single expression.
func ParseExpr(src string) (e lang.Expr, err error) {
	defer recoverError(&err)
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	e = p.parseExpr()
	p.expect(tEOF)
	return e, nil
}

// ParseComp parses a comprehension tree.
func ParseComp(src string) (c lang.CompNode, err error) {
	defer recoverError(&err)
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	c = p.parseComp()
	p.expect(tEOF)
	return c, nil
}

func (p *parser) parseProgram() *lang.Program {
	prog := &lang.Program{}
	for p.peek().kind == tKwParam {
		p.next()
		for {
			t := p.expect(tIdent)
			prog.Params = append(prog.Params, lang.Param{Name: t.text, Pos: pos(t)})
			if !p.got(tComma) {
				break
			}
		}
		p.expect(tSemi)
	}
	switch p.peek().kind {
	case tKwLetrecStar, tKwLetrec:
		strict := p.next().kind == tKwLetrecStar
		for {
			d := p.parseDef()
			d.Strict = strict
			prog.Defs = append(prog.Defs, d)
			if !p.got(tSemi) {
				break
			}
			if p.peek().kind == tKwIn {
				break
			}
		}
		p.expect(tKwIn)
		prog.Result = p.expect(tIdent).text
	case tIdent:
		d := p.parseDef()
		d.Strict = true // a standalone definition is compiled for a strict context
		prog.Defs = append(prog.Defs, d)
		prog.Result = d.Name
	default:
		p.bail(p.peek(), "expected 'letrec*', 'letrec', 'param' or a definition, found %s", p.peek())
	}
	return prog
}

func (p *parser) parseDef() *lang.ArrayDef {
	nameTok := p.expect(tIdent)
	p.expect(tEquals)
	d := &lang.ArrayDef{Name: nameTok.text, DefPos: pos(nameTok)}
	switch p.peek().kind {
	case tKwArray:
		p.next()
		d.Kind = lang.Monolithic
		d.Bounds = p.parseBounds()
		d.Comp = p.parseComp()
	case tKwAccumArray:
		p.next()
		d.Kind = lang.Accumulated
		d.Accum = &lang.AccumSpec{}
		d.Accum.Combine = p.parseCombiner()
		d.Accum.Init = p.parseAtom()
		d.Bounds = p.parseBounds()
		d.Comp = p.parseComp()
	case tKwBigupd:
		p.next()
		d.Kind = lang.BigUpd
		d.Source = p.expect(tIdent).text
		d.Comp = p.parseComp()
	default:
		p.bail(p.peek(), "expected 'array', 'accumArray' or 'bigupd', found %s", p.peek())
	}
	return d
}

// parseCombiner accepts `(+)`, `(*)`, `max`, `min`, `left`, `right`.
func (p *parser) parseCombiner() string {
	t := p.peek()
	if p.got(tLParen) {
		op := p.next()
		var name string
		switch op.kind {
		case tPlus:
			name = "+"
		case tStar:
			name = "*"
		default:
			p.bail(op, "expected '+' or '*' combining operator")
		}
		p.expect(tRParen)
		return name
	}
	id := p.expect(tIdent)
	switch id.text {
	case "max", "min", "left", "right":
		return id.text
	}
	p.bail(t, "unknown combining function %q (want (+), (*), max, min, left, right)", id.text)
	return ""
}

// parseBounds parses `(lo,hi)` for 1-D or `((l1,…,lk),(u1,…,uk))` for k-D.
func (p *parser) parseBounds() []lang.Bound {
	open := p.expect(tLParen)
	if p.peek().kind == tLParen {
		// Multi-dimensional: tuple of lows, tuple of highs.
		los := p.parseExprTuple()
		p.expect(tComma)
		his := p.parseExprTuple()
		p.expect(tRParen)
		if len(los) != len(his) {
			p.bail(open, "bounds tuples have mismatched arity: %d lows vs %d highs", len(los), len(his))
		}
		bounds := make([]lang.Bound, len(los))
		for i := range los {
			bounds[i] = lang.Bound{Lo: los[i], Hi: his[i]}
		}
		return bounds
	}
	lo := p.parseExpr()
	p.expect(tComma)
	hi := p.parseExpr()
	p.expect(tRParen)
	return []lang.Bound{{Lo: lo, Hi: hi}}
}

// parseExprTuple parses "(" expr {"," expr} ")".
func (p *parser) parseExprTuple() []lang.Expr {
	p.expect(tLParen)
	var out []lang.Expr
	out = append(out, p.parseExpr())
	for p.got(tComma) {
		out = append(out, p.parseExpr())
	}
	p.expect(tRParen)
	return out
}

// --- comprehensions ---

func (p *parser) parseComp() lang.CompNode {
	first := p.parseCompAtom()
	if p.peek().kind != tPlusPlus {
		return first
	}
	app := &lang.Append{Parts: []lang.CompNode{first}}
	for p.got(tPlusPlus) {
		app.Parts = append(app.Parts, p.parseCompAtom())
	}
	return app
}

func (p *parser) parseCompAtom() lang.CompNode {
	t := p.peek()
	switch t.kind {
	case tLBrackStar:
		p.next()
		body := p.parseComp()
		p.expect(tBar)
		quals := p.parseQuals()
		p.expect(tStarRBrack)
		return wrapQuals(body, quals)
	case tLBrack:
		p.next()
		cl := p.parseClause()
		switch p.peek().kind {
		case tBar:
			p.next()
			quals := p.parseQuals()
			p.expect(tRBrack)
			return wrapQuals(cl, quals)
		case tComma:
			parts := []lang.CompNode{cl}
			for p.got(tComma) {
				parts = append(parts, p.parseClause())
			}
			p.expect(tRBrack)
			return &lang.Append{Parts: parts}
		default:
			p.expect(tRBrack)
			return cl
		}
	case tLParen:
		p.next()
		c := p.parseComp()
		p.expect(tRParen)
		if p.peek().kind == tKwWhere {
			w := p.next()
			binds := p.parseBinds()
			return &lang.CompLet{Binds: binds, Body: c, LetPos: pos(w)}
		}
		return c
	case tKwLet:
		lt := p.next()
		binds := p.parseBinds()
		p.expect(tKwIn)
		body := p.parseComp()
		return &lang.CompLet{Binds: binds, Body: body, LetPos: pos(lt)}
	}
	p.bail(t, "expected a comprehension, found %s", t)
	return nil
}

// qual is one generator or guard.
type qual struct {
	isGen  bool
	v      string
	vPos   lang.Pos
	first  lang.Expr
	second lang.Expr
	last   lang.Expr
	guard  lang.Expr
}

func (p *parser) parseQuals() []qual {
	var out []qual
	for {
		out = append(out, p.parseQual())
		if !p.got(tComma) {
			return out
		}
	}
}

func (p *parser) parseQual() qual {
	// Generator: ident <- [first[,second]..last]
	if p.peek().kind == tIdent && p.peekAt(1).kind == tArrow {
		v := p.next()
		p.next() // <-
		p.expect(tLBrack)
		q := qual{isGen: true, v: v.text, vPos: pos(v)}
		q.first = p.parseExpr()
		if p.got(tComma) {
			q.second = p.parseExpr()
		}
		p.expect(tDotDot)
		q.last = p.parseExpr()
		p.expect(tRBrack)
		return q
	}
	return qual{guard: p.parseExpr()}
}

// wrapQuals nests body inside the qualifiers, first qualifier
// outermost, exactly as the TE translation prescribes.
func wrapQuals(body lang.CompNode, quals []qual) lang.CompNode {
	for i := len(quals) - 1; i >= 0; i-- {
		q := quals[i]
		if q.isGen {
			body = &lang.Generator{
				Var: q.v, VarPos: q.vPos,
				First: q.first, Second: q.second, Last: q.last,
				Body: body,
			}
		} else {
			body = &lang.Guard{Cond: q.guard, Body: body}
		}
	}
	return body
}

// parseClause parses `subs := value [where binds]`.
func (p *parser) parseClause() *lang.Clause {
	subs := p.parseSubscriptTuple()
	asg := p.expect(tAssignSV)
	val := p.parseExpr()
	if p.peek().kind == tKwWhere {
		w := p.next()
		binds := p.parseBinds()
		val = &lang.Let{LetPos: pos(w), Binds: binds, Body: val}
	}
	return &lang.Clause{Subs: subs, Value: val, Assign: pos(asg)}
}

// parseSubscriptTuple parses either a bare expression (1-D subscript)
// or a parenthesized comma tuple (k-D subscript). `(e)` is the 1-D
// parenthesized case.
func (p *parser) parseSubscriptTuple() []lang.Expr {
	if p.peek().kind == tLParen {
		save := p.i
		p.next()
		first := p.parseExpr()
		if p.got(tComma) {
			subs := []lang.Expr{first}
			subs = append(subs, p.parseExpr())
			for p.got(tComma) {
				subs = append(subs, p.parseExpr())
			}
			p.expect(tRParen)
			return subs
		}
		p.expect(tRParen)
		// Parenthesized scalar subscript — but it may be followed by
		// operators (e.g. `(i+1)*2 := …`), so re-parse from the save
		// point as a full expression.
		if isClauseEnd(p.peek().kind) {
			return []lang.Expr{first}
		}
		p.i = save
	}
	return []lang.Expr{p.parseExpr()}
}

func isClauseEnd(k kind) bool {
	return k == tAssignSV
}

// parseBinds parses `ident = expr {; ident = expr}` stopping before a
// `;` that does not introduce another binding.
func (p *parser) parseBinds() []lang.Binding {
	var out []lang.Binding
	for {
		id := p.expect(tIdent)
		p.expect(tEquals)
		rhs := p.parseExpr()
		out = append(out, lang.Binding{Name: id.text, Rhs: rhs, Pos: pos(id)})
		if p.peek().kind == tSemi && p.peekAt(1).kind == tIdent && p.peekAt(2).kind == tEquals {
			p.next()
			continue
		}
		return out
	}
}

// --- expressions ---

func (p *parser) parseExpr() lang.Expr {
	switch p.peek().kind {
	case tKwIf:
		t := p.next()
		c := p.parseExpr()
		p.expect(tKwThen)
		th := p.parseExpr()
		p.expect(tKwElse)
		el := p.parseExpr()
		return &lang.Cond{If: pos(t), C: c, T: th, E: el}
	case tKwLet:
		t := p.next()
		binds := p.parseBinds()
		p.expect(tKwIn)
		body := p.parseExpr()
		return &lang.Let{LetPos: pos(t), Binds: binds, Body: body}
	}
	return p.parseOr()
}

func (p *parser) parseOr() lang.Expr {
	e := p.parseAnd()
	for p.peek().kind == tOrOr {
		p.next()
		e = &lang.BinOp{Op: lang.OpOr, L: e, R: p.parseAnd()}
	}
	return e
}

func (p *parser) parseAnd() lang.Expr {
	e := p.parseCmp()
	for p.peek().kind == tAndAnd {
		p.next()
		e = &lang.BinOp{Op: lang.OpAnd, L: e, R: p.parseCmp()}
	}
	return e
}

func (p *parser) parseCmp() lang.Expr {
	e := p.parseAdd()
	var op lang.Op
	switch p.peek().kind {
	case tEq:
		op = lang.OpEq
	case tNe:
		op = lang.OpNe
	case tLt:
		op = lang.OpLt
	case tLe:
		op = lang.OpLe
	case tGt:
		op = lang.OpGt
	case tGe:
		op = lang.OpGe
	default:
		return e
	}
	p.next()
	return &lang.BinOp{Op: op, L: e, R: p.parseAdd()}
}

func (p *parser) parseAdd() lang.Expr {
	e := p.parseMul()
	for {
		switch p.peek().kind {
		case tPlus:
			p.next()
			e = &lang.BinOp{Op: lang.OpAdd, L: e, R: p.parseMul()}
		case tMinus:
			p.next()
			e = &lang.BinOp{Op: lang.OpSub, L: e, R: p.parseMul()}
		default:
			return e
		}
	}
}

func (p *parser) parseMul() lang.Expr {
	e := p.parseUnary()
	for {
		switch p.peek().kind {
		case tStar:
			p.next()
			e = &lang.BinOp{Op: lang.OpMul, L: e, R: p.parseUnary()}
		case tSlash:
			p.next()
			e = &lang.BinOp{Op: lang.OpDiv, L: e, R: p.parseUnary()}
		case tKwMod:
			p.next()
			e = &lang.BinOp{Op: lang.OpMod, L: e, R: p.parseUnary()}
		default:
			return e
		}
	}
}

func (p *parser) parseUnary() lang.Expr {
	switch p.peek().kind {
	case tMinus:
		t := p.next()
		return &lang.UnOp{Op: lang.OpNeg, X: p.parseUnary(), OpPos: pos(t)}
	case tKwNot:
		t := p.next()
		return &lang.UnOp{Op: lang.OpNot, X: p.parseUnary(), OpPos: pos(t)}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() lang.Expr {
	e := p.parseAtom()
	for p.peek().kind == tBang {
		v, ok := e.(*lang.Var)
		if !ok {
			p.bail(p.peek(), "'!' selection requires an array name on the left")
		}
		bang := p.next()
		subs := p.parseIndexSubscripts()
		e = &lang.Index{Array: v.Name, Subs: subs, Bang: pos(bang)}
	}
	return e
}

// parseIndexSubscripts parses the subscript(s) after '!': either an
// atom (a!i, a!3) or a parenthesized tuple (a!(i-1,j)).
func (p *parser) parseIndexSubscripts() []lang.Expr {
	if p.peek().kind == tLParen {
		return p.parseExprTuple()
	}
	return []lang.Expr{p.parseAtom()}
}

func (p *parser) parseAtom() lang.Expr {
	t := p.peek()
	switch t.kind {
	case tInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			p.bail(t, "bad integer literal %q: %v", t.text, err)
		}
		return &lang.IntLit{Value: v, LitPos: pos(t), Literal: t.text}
	case tFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			p.bail(t, "bad float literal %q: %v", t.text, err)
		}
		return &lang.FloatLit{Value: v, LitPos: pos(t), Literal: t.text}
	case tIdent:
		p.next()
		if p.peek().kind == tLParen {
			args := p.parseExprTuple()
			return &lang.Call{Fn: t.text, Args: args, FnPos: pos(t)}
		}
		return &lang.Var{Name: t.text, NamePos: pos(t)}
	case tLParen:
		p.next()
		e := p.parseExpr()
		p.expect(tRParen)
		return e
	case tKwIf, tKwLet:
		return p.parseExpr()
	}
	p.bail(t, "expected an expression, found %s", t)
	return nil
}

// inferParams adds any free scalar variable of the program that is not
// an array name, declared parameter, generator index, or let binding to
// the parameter list (sorted for determinism).
func inferParams(prog *lang.Program) {
	arrays := map[string]bool{}
	for _, d := range prog.Defs {
		arrays[d.Name] = true
	}
	declared := map[string]bool{}
	for _, q := range prog.Params {
		declared[q.Name] = true
	}
	freeScalars := map[string]bool{}
	noteExpr := func(e lang.Expr, bound map[string]bool) {
		for name := range lang.FreeVars(e) {
			if !arrays[name] && !bound[name] {
				freeScalars[name] = true
			}
		}
	}
	var walkComp func(n lang.CompNode, bound map[string]bool)
	walkComp = func(n lang.CompNode, bound map[string]bool) {
		switch x := n.(type) {
		case nil:
		case *lang.Clause:
			for _, s := range x.Subs {
				noteExpr(s, bound)
			}
			noteExpr(x.Value, bound)
		case *lang.Generator:
			noteExpr(x.First, bound)
			if x.Second != nil {
				noteExpr(x.Second, bound)
			}
			noteExpr(x.Last, bound)
			inner := copySet(bound)
			inner[x.Var] = true
			walkComp(x.Body, inner)
		case *lang.Guard:
			noteExpr(x.Cond, bound)
			walkComp(x.Body, bound)
		case *lang.Append:
			for _, part := range x.Parts {
				walkComp(part, bound)
			}
		case *lang.CompLet:
			for _, b := range x.Binds {
				noteExpr(b.Rhs, bound)
			}
			inner := copySet(bound)
			for _, b := range x.Binds {
				inner[b.Name] = true
			}
			walkComp(x.Body, inner)
		}
	}
	for _, d := range prog.Defs {
		for _, b := range d.Bounds {
			noteExpr(b.Lo, nil)
			noteExpr(b.Hi, nil)
		}
		if d.Accum != nil {
			noteExpr(d.Accum.Init, nil)
		}
		walkComp(d.Comp, map[string]bool{})
	}
	var names []string
	for name := range freeScalars {
		if !declared[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		prog.Params = append(prog.Params, lang.Param{Name: name})
	}
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s)+1)
	for k := range s {
		out[k] = true
	}
	return out
}
