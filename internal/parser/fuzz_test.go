package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// Robustness: the parser must return errors, never panic, on arbitrary
// garbage and on randomly truncated/mutated valid programs.

var seedPrograms = []string{
	`a = array (1,n) [ i := i*i | i <- [1..n] ]`,
	`letrec* a = array ((1,1),(n,n))
	    ([ (1,j) := 1.0 | j <- [1..n] ] ++
	     [ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ])
	in a`,
	`param m, n; a2 = bigupd a [* [ (m,j) := a!(n,j) ] | j <- [1..n] *]`,
	`h = accumArray (+) 0.0 (0,9) [ i mod 10 := 1.0 | i <- [1..n] ]`,
	`a = array (1,n) [ i := t where t = a!(i-1) | i <- [2..n] ]`,
}

func TestParserNeverPanicsOnTruncations(t *testing.T) {
	for _, src := range seedPrograms {
		for cut := 0; cut <= len(src); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on truncation at %d of %q: %v", cut, src, r)
					}
				}()
				_, _ = ParseProgram(src[:cut])
			}()
		}
	}
}

func TestParserNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []byte(`abn ij09+-*/=<>!|,;()[]{}.:#@$'"` + "\t\n")
	for _, src := range seedPrograms {
		for trial := 0; trial < 200; trial++ {
			b := []byte(src)
			for k := 0; k < 1+rng.Intn(4); k++ {
				pos := rng.Intn(len(b))
				switch rng.Intn(3) {
				case 0:
					b[pos] = alphabet[rng.Intn(len(alphabet))]
				case 1:
					b = append(b[:pos], b[pos+1:]...)
				default:
					b = append(b[:pos], append([]byte{alphabet[rng.Intn(len(alphabet))]}, b[pos:]...)...)
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutated input %q: %v", b, r)
					}
				}()
				_, _ = ParseProgram(string(b))
			}()
		}
	}
}

func TestParserNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(120)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on garbage %q: %v", b, r)
				}
			}()
			_, _ = ParseProgram(string(b))
		}()
	}
}

func TestParserErrorQuality(t *testing.T) {
	// Errors must carry positions and name what was expected or found.
	_, err := ParseProgram("a = array (1,n)\n[ i := | i <- [1..n] ]")
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "2:") {
		t.Errorf("error lacks position: %q", msg)
	}
	if !strings.Contains(msg, "expected") && !strings.Contains(msg, "found") {
		t.Errorf("error lacks expectation: %q", msg)
	}
}
