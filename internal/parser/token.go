package parser

import "fmt"

// kind enumerates the lexical token kinds of the surface syntax.
type kind uint8

const (
	tEOF kind = iota
	tInt
	tFloat
	tIdent
	// punctuation
	tLParen     // (
	tRParen     // )
	tLBrack     // [
	tRBrack     // ]
	tLBrackStar // [*
	tStarRBrack // *]
	tComma      // ,
	tSemi       // ;
	tBang       // !
	tAssignSV   // :=
	tArrow      // <-
	tDotDot     // ..
	tPlusPlus   // ++
	tBar        // |
	// operators
	tPlus   // +
	tMinus  // -
	tStar   // *
	tSlash  // /
	tEq     // ==
	tNe     // /=
	tLt     // <
	tLe     // <=
	tGt     // >
	tGe     // >=
	tAndAnd // &&
	tOrOr   // ||
	tEquals // =  (binding)
	// keywords
	tKwParam
	tKwLetrec     // letrec
	tKwLetrecStar // letrec*
	tKwLet
	tKwIn
	tKwWhere
	tKwIf
	tKwThen
	tKwElse
	tKwArray
	tKwAccumArray
	tKwBigupd
	tKwMod
	tKwNot
)

var kindNames = map[kind]string{
	tEOF: "end of input", tInt: "integer", tFloat: "float", tIdent: "identifier",
	tLParen: "'('", tRParen: "')'", tLBrack: "'['", tRBrack: "']'",
	tLBrackStar: "'[*'", tStarRBrack: "'*]'", tComma: "','", tSemi: "';'",
	tBang: "'!'", tAssignSV: "':='", tArrow: "'<-'", tDotDot: "'..'",
	tPlusPlus: "'++'", tBar: "'|'", tPlus: "'+'", tMinus: "'-'", tStar: "'*'",
	tSlash: "'/'", tEq: "'=='", tNe: "'/='", tLt: "'<'", tLe: "'<='",
	tGt: "'>'", tGe: "'>='", tAndAnd: "'&&'", tOrOr: "'||'", tEquals: "'='",
	tKwParam: "'param'", tKwLetrec: "'letrec'", tKwLetrecStar: "'letrec*'",
	tKwLet: "'let'", tKwIn: "'in'", tKwWhere: "'where'", tKwIf: "'if'",
	tKwThen: "'then'", tKwElse: "'else'", tKwArray: "'array'",
	tKwAccumArray: "'accumArray'", tKwBigupd: "'bigupd'", tKwMod: "'mod'",
	tKwNot: "'not'",
}

func (k kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]kind{
	"param": tKwParam, "letrec": tKwLetrec, "let": tKwLet, "in": tKwIn,
	"where": tKwWhere, "if": tKwIf, "then": tKwThen, "else": tKwElse,
	"array": tKwArray, "accumArray": tKwAccumArray, "bigupd": tKwBigupd,
	"mod": tKwMod, "not": tKwNot,
}

// token is one lexical token.
type token struct {
	kind kind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tInt, tFloat, tIdent:
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}
