package parser

import (
	"strings"
	"testing"

	"arraycomp/internal/lang"
)

func mustExpr(t *testing.T, src string) lang.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestParseExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"a!i + a!(i-1)", "a!i + a!(i - 1)"},
		{"-x * y", "-x * y"},
		{"a!(i-1,j) + a!(i,j-1)", "a!(i - 1,j) + a!(i,j - 1)"},
		{"i mod 2 == 0", "i mod 2 == 0"},
		{"x < y && y < z || w == 0", "x < y && y < z || w == 0"},
		{"if i == 1 then 1.0 else u!(i-1)", "if i == 1 then 1.0 else u!(i - 1)"},
		{"let t = a!i in t * t", "let t = a!i in t * t"},
		{"min(x, y) + max(x, y)", "min(x, y) + max(x, y)"},
		{"not (x < y)", "not (x < y)"},
	}
	for _, c := range cases {
		got := lang.ExprString(mustExpr(t, c.src))
		if got != c.want {
			t.Errorf("ParseExpr(%q) prints %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseExprRoundTrip(t *testing.T) {
	// Printing then reparsing must be a fixed point.
	srcs := []string{
		"a!(3 * i - 1) + b!(2 * j)",
		"if x <= 0 then -x else x",
		"let s = a!i + a!(i + 1); d = a!i - a!(i + 1) in s * d",
		"u!(i,j) * (1 - omega) + omega * w",
	}
	for _, src := range srcs {
		once := lang.ExprString(mustExpr(t, src))
		twice := lang.ExprString(mustExpr(t, once))
		if once != twice {
			t.Errorf("print/parse not a fixed point: %q -> %q -> %q", src, once, twice)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", "a!", "if x then y", "let x = in y", "1 ? 2", "3!(i)",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseExpr("1 +\n  *")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q should mention line 2", err)
	}
}

func TestParseSimpleComprehension(t *testing.T) {
	c, err := ParseComp("[ i := i*i | i <- [1..n] ]")
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := c.(*lang.Generator)
	if !ok {
		t.Fatalf("want Generator, got %T", c)
	}
	if gen.Var != "i" || gen.Second != nil {
		t.Errorf("generator = %+v", gen)
	}
	cl, ok := gen.Body.(*lang.Clause)
	if !ok {
		t.Fatalf("generator body: want Clause, got %T", gen.Body)
	}
	if len(cl.Subs) != 1 {
		t.Errorf("clause subs = %d, want 1", len(cl.Subs))
	}
}

func TestParseStrideGenerator(t *testing.T) {
	c, err := ParseComp("[ i := 0.0 | i <- [n, n-2 .. 1] ]")
	if err != nil {
		t.Fatal(err)
	}
	gen := c.(*lang.Generator)
	if gen.Second == nil {
		t.Fatal("stride generator must record its second element")
	}
	if lang.ExprString(gen.Second) != "n - 2" {
		t.Errorf("second = %q", lang.ExprString(gen.Second))
	}
}

func TestParseGuard(t *testing.T) {
	c, err := ParseComp("[ i := 1.0 | i <- [1..n], i mod 2 == 0 ]")
	if err != nil {
		t.Fatal(err)
	}
	gen := c.(*lang.Generator)
	g, ok := gen.Body.(*lang.Guard)
	if !ok {
		t.Fatalf("want Guard inside Generator, got %T", gen.Body)
	}
	if _, ok := g.Body.(*lang.Clause); !ok {
		t.Fatalf("guard body: want Clause, got %T", g.Body)
	}
}

func TestParseMultiClauseList(t *testing.T) {
	c, err := ParseComp("[ 1 := 1.0, 2 := 2.0, 3 := 3.0 ]")
	if err != nil {
		t.Fatal(err)
	}
	app, ok := c.(*lang.Append)
	if !ok {
		t.Fatalf("want Append of clauses, got %T", c)
	}
	if len(app.Parts) != 3 {
		t.Errorf("parts = %d, want 3", len(app.Parts))
	}
}

func TestParseNestedComprehension(t *testing.T) {
	// The paper's section 5 example 1 shape.
	src := `[* [3*i := 1.0] ++
	          [3*i-1 := a!(3*(i-1))] ++
	          [3*i-2 := a!(3*i)]
	        | i <- [1..100] *]`
	c, err := ParseComp(src)
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := c.(*lang.Generator)
	if !ok {
		t.Fatalf("want Generator, got %T", c)
	}
	app, ok := gen.Body.(*lang.Append)
	if !ok {
		t.Fatalf("want Append, got %T", gen.Body)
	}
	if len(app.Parts) != 3 {
		t.Fatalf("append parts = %d, want 3", len(app.Parts))
	}
	if got := len(lang.Clauses(c)); got != 3 {
		t.Errorf("clauses = %d, want 3", got)
	}
}

func TestParseWhereOnClause(t *testing.T) {
	c, err := ParseComp("[ i := t + t where t = a!i | i <- [1..n] ]")
	if err != nil {
		t.Fatal(err)
	}
	cl := lang.Clauses(c)[0]
	let, ok := cl.Value.(*lang.Let)
	if !ok {
		t.Fatalf("where must desugar to Let, got %T", cl.Value)
	}
	if len(let.Binds) != 1 || let.Binds[0].Name != "t" {
		t.Errorf("binds = %+v", let.Binds)
	}
}

func TestParseCompLetAndWhere(t *testing.T) {
	c, err := ParseComp("[* (let v = i*2 in [ i := v ]) | i <- [1..n] *]")
	if err != nil {
		t.Fatal(err)
	}
	gen := c.(*lang.Generator)
	if _, ok := gen.Body.(*lang.CompLet); !ok {
		t.Fatalf("want CompLet, got %T", gen.Body)
	}
	// Postfix where on a parenthesized comprehension.
	c2, err := ParseComp("[* ([ i := v ]) where v = i*2 | i <- [1..n] *]")
	if err != nil {
		t.Fatal(err)
	}
	gen2 := c2.(*lang.Generator)
	if _, ok := gen2.Body.(*lang.CompLet); !ok {
		t.Fatalf("want CompLet from where, got %T", gen2.Body)
	}
}

func TestParseWavefrontProgram(t *testing.T) {
	src := `
	-- the paper's section 3 wavefront recurrence
	letrec* a = array ((1,1),(n,n))
	    ([ (1,j) := 1.0 | j <- [1..n] ] ++
	     [ (i,1) := 1.0 | i <- [2..n] ] ++
	     [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
	       | i <- [2..n], j <- [2..n] ])
	in a`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Defs) != 1 || prog.Result != "a" {
		t.Fatalf("prog = %+v", prog)
	}
	d := prog.Defs[0]
	if !d.Strict {
		t.Error("letrec* binding must be strict")
	}
	if d.Rank() != 2 {
		t.Errorf("rank = %d, want 2", d.Rank())
	}
	if got := len(lang.Clauses(d.Comp)); got != 3 {
		t.Errorf("clauses = %d, want 3", got)
	}
	// n must be inferred as a parameter.
	if len(prog.Params) != 1 || prog.Params[0].Name != "n" {
		t.Errorf("params = %+v, want [n]", prog.Params)
	}
}

func TestParseProgramShorthand(t *testing.T) {
	prog, err := ParseProgram("sq = array (1,n) [ i := i*i | i <- [1..n] ]")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Result != "sq" || !prog.Defs[0].Strict {
		t.Errorf("prog = %+v", prog)
	}
}

func TestParseLetrecNonStrict(t *testing.T) {
	prog, err := ParseProgram("letrec a = array (1,n) [ i := 1.0 | i <- [1..n] ] in a")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Defs[0].Strict {
		t.Error("plain letrec binding must be non-strict")
	}
}

func TestParseAccumArray(t *testing.T) {
	prog, err := ParseProgram(`h = accumArray (+) 0.0 (1,10)
	   [ x!i mod 10 + 1 := 1.0 | i <- [1..n] ]`)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Defs[0]
	if d.Kind != lang.Accumulated {
		t.Fatalf("kind = %v", d.Kind)
	}
	if d.Accum.Combine != "+" || !d.Accum.Commutative() {
		t.Errorf("accum = %+v", d.Accum)
	}
}

func TestParseAccumArrayNonCommutative(t *testing.T) {
	prog, err := ParseProgram(`h = accumArray right 0.0 (1,10) [ i := 1.0 | i <- [1..n] ]`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Defs[0].Accum.Commutative() {
		t.Error("'right' must not be commutative")
	}
}

func TestParseBigupd(t *testing.T) {
	src := `
	param m, n, i, k;
	letrec* a2 = bigupd a
	    ([ (i,j) := a!(k,j) | j <- [1..n] ] ++
	     [ (k,j) := a!(i,j) | j <- [1..n] ])
	in a2`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Defs[0]
	if d.Kind != lang.BigUpd || d.Source != "a" {
		t.Fatalf("def = %+v", d)
	}
	// a is free but is an array, not a scalar param; declared params
	// stay in order, no duplicates added.
	for _, q := range prog.Params {
		if q.Name == "a" || q.Name == "a2" || q.Name == "j" {
			t.Errorf("wrongly inferred parameter %q", q.Name)
		}
	}
}

func TestParseMultiDefProgram(t *testing.T) {
	src := `
	letrec*
	  b = array (1,n) [ i := 2.0 * i | i <- [1..n] ];
	  c = array (1,n) [ i := b!i + 1.0 | i <- [1..n] ];
	in c`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Defs) != 2 || prog.Result != "c" {
		t.Fatalf("prog = %v", lang.ProgramString(prog))
	}
	if prog.Def("b") == nil || prog.Def("c") == nil || prog.Def("zzz") != nil {
		t.Error("Def lookup broken")
	}
}

func TestParseParenthesizedScalarSubscript(t *testing.T) {
	c, err := ParseComp("[ (i+1) := 1.0 | i <- [1..n] ]")
	if err != nil {
		t.Fatal(err)
	}
	cl := lang.Clauses(c)[0]
	if len(cl.Subs) != 1 {
		t.Fatalf("subs = %d, want 1", len(cl.Subs))
	}
	if got := lang.ExprString(cl.Subs[0]); got != "i + 1" {
		t.Errorf("sub = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	src := `-- line comment
	{- block {- nested -} comment -}
	sq = array (1,n) [ i := i*i | i <- [1..n] ] -- trailing`
	if _, err := ParseProgram(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseUnterminatedBlockComment(t *testing.T) {
	if _, err := ParseProgram("{- oops"); err == nil {
		t.Error("unterminated block comment must error")
	}
}

func TestParseDefErrors(t *testing.T) {
	for _, src := range []string{
		"a = array",
		"a = array (1,n)",
		"a = accumArray bogus 0 (1,n) [ i := 1 | i <- [1..n] ]",
		"a = array ((1,1),(n)) [ (i,j) := 1 | i <- [1..n], j <- [1..n] ]",
		"a = bigupd [ i := 1 | i <- [1..n] ]",
	} {
		if _, err := ParseDef(src); err == nil {
			t.Errorf("ParseDef(%q) succeeded, want error", src)
		}
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	src := `
	letrec* a = array ((1,1),(n,n))
	    ([ (1,j) := 1.0 | j <- [1..n] ] ++
	     [ (i,1) := 1.0 | i <- [2..n] ] ++
	     [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
	       | i <- [2..n], j <- [2..n] ])
	in a`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.ProgramString(prog)
	prog2, err := ParseProgram(printed)
	if err != nil {
		t.Fatalf("reparse of %q: %v", printed, err)
	}
	if lang.ProgramString(prog2) != printed {
		t.Errorf("print/parse not a fixed point:\n%s\nvs\n%s", printed, lang.ProgramString(prog2))
	}
}
