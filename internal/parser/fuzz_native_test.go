package parser

import (
	"testing"

	"arraycomp/internal/lang"
)

// FuzzParserNoPanic is the native fuzz target behind the deterministic
// truncation/mutation tests in fuzz_test.go: the parser must return an
// error, never panic, on arbitrary bytes — and anything it does accept
// must survive a print/re-parse round trip (the property the oracle's
// shrinker depends on).
//
// Run with: go test ./internal/parser -fuzz FuzzParserNoPanic
func FuzzParserNoPanic(f *testing.F) {
	for _, src := range seedPrograms {
		f.Add(src)
	}
	f.Add("")
	f.Add("param ;;")
	f.Add("a = array (1,n) [* [* | *] *]")
	f.Add("a = accumArray (*) 1 (0,1) [ 0 := 1 ]")
	f.Add("{- {- nested -} comment -} a = array (1,1) [ 1 := 1 ]")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src) // must not panic
		if err != nil {
			return
		}
		printed := lang.ProgramString(prog)
		again, err := ParseProgram(printed)
		if err != nil {
			t.Fatalf("printed form of accepted input does not re-parse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if lang.ProgramString(again) != printed {
			t.Fatalf("print/parse/print not a fixpoint\ninput: %q\nprinted: %q", src, printed)
		}
	})
}
