// Wavefront: the paper's section 3 running example. A two-dimensional
// recurrence whose north and west borders are 1 and whose interior
// elements sum their north, north-west and west neighbours — the
// textbook case where non-strict monolithic arrays shine: the
// subscript/value pair order is irrelevant to the semantics, and the
// compiler recovers the safe evaluation order itself.
package main

import (
	"fmt"
	"log"

	"arraycomp"
)

const src = `
-- wavefront recurrence (paper section 3)
letrec* a = array ((1,1),(n,n))
    ([ (1,j) := 1.0 | j <- [1..n] ] ++
     [ (i,1) := 1.0 | i <- [2..n] ] ++
     [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
       | i <- [2..n], j <- [2..n] ])
in a`

func main() {
	n := int64(8)
	prog, err := arraycomp.Compile(src, arraycomp.Params{"n": n}, nil)
	if err != nil {
		log.Fatal(err)
	}
	out, err := prog.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wavefront over a %d×%d mesh (central Delannoy numbers on the diagonal):\n\n", n, n)
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			fmt.Printf("%8g", out.At(i, j))
		}
		fmt.Println()
	}
	fmt.Println("\n--- how it compiled ---")
	fmt.Print(prog.Report())
}
