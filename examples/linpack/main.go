// LINPACK fragments: the in-place update patterns of the paper's
// section 9 — row interchange (the anti-dependence cycle broken by a
// per-instance scalar), row scaling, and row SAXPY — composed into one
// step of partial-pivoting Gaussian elimination, all compiled as
// single-threaded in-place updates.
package main

import (
	"fmt"
	"log"

	"arraycomp"
)

const pivotStep = `param m, n, p, r;
letrec*
  swapped = bigupd a
    [* [ (p,j) := a!(r,j) ] ++ [ (r,j) := a!(p,j) ] | j <- [1..n] *];
in swapped`

const scaleStep = `param m, n, p, r;
a2 = bigupd a [ (p,j) := a!(p,j) / a!(p,p) | j <- [1..n] ]`

const saxpyStep = `param m, n, p, r;
a2 = bigupd a [ (r,j) := a!(r,j) - a!(r,p) * a!(p,j) | j <- [1..n] ]`

func main() {
	m, n := int64(4), int64(4)
	opts := func() *arraycomp.Options {
		return &arraycomp.Options{Inputs: map[string]arraycomp.InputBounds{
			"a": {Lo: []int64{1, 1}, Hi: []int64{m, n}},
		}}
	}

	a := arraycomp.NewArray2(1, 1, m, n)
	data := [][]float64{
		{0, 2, 1, 4},
		{4, 1, 2, 1},
		{2, 3, 3, 2},
		{1, 2, 4, 3},
	}
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= n; j++ {
			a.Set(data[i-1][j-1], i, j)
		}
	}
	fmt.Println("input matrix:")
	print2(a, m, n)

	// Pivot: swap row 1 (zero pivot) with row 2.
	params := arraycomp.Params{"m": m, "n": n, "p": 1, "r": 2}
	run := func(src string, cur *arraycomp.Array) *arraycomp.Array {
		prog, err := arraycomp.Compile(src, params, opts())
		if err != nil {
			log.Fatal(err)
		}
		def := prog.Definitions()[len(prog.Definitions())-1]
		mode, _ := prog.Mode(def)
		fmt.Printf("-- %s compiled %s\n", def, mode)
		out, err := prog.Run(map[string]*arraycomp.Array{"a": cur})
		if err != nil {
			log.Fatal(err)
		}
		return out
	}

	cur := run(pivotStep, a)
	fmt.Println("after row interchange (rows 1 and 2):")
	print2(cur, m, n)

	cur = run(scaleStep, cur)
	fmt.Println("after scaling the pivot row by the pivot:")
	print2(cur, m, n)

	cur = run(saxpyStep, cur)
	fmt.Println("after eliminating row 2 with a SAXPY:")
	print2(cur, m, n)

	fmt.Println("original input is untouched (persistent semantics):")
	print2(a, m, n)
}

func print2(a *arraycomp.Array, m, n int64) {
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= n; j++ {
			fmt.Printf("%8.3f", a.At(i, j))
		}
		fmt.Println()
	}
	fmt.Println()
}
