// Quickstart: compile and run two tiny array comprehensions — the
// introduction's vector of squares and a first-order recurrence — and
// peek at the compilation report to see which optimizations fired.
package main

import (
	"fmt"
	"log"

	"arraycomp"
)

func main() {
	// A monolithic array comprehension: every element defined at
	// creation. The compiler proves there are no write collisions and
	// no empties, finds no dependences, and emits a plain loop.
	squares, err := arraycomp.Compile(
		`sq = array (1,n) [ i := i*i | i <- [1..n] ]`,
		arraycomp.Params{"n": 10}, nil)
	if err != nil {
		log.Fatal(err)
	}
	out, err := squares.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("squares: ")
	for i := int64(1); i <= 10; i++ {
		fmt.Printf("%g ", out.At(i))
	}
	fmt.Println()

	// A recursive array: element i depends on element i−1. Subscript
	// analysis finds the (<) flow dependence, schedules the loop
	// forward, and compiles without thunks.
	rec, err := arraycomp.Compile(
		`a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) * 2.0 | i <- [2..n] ])`,
		arraycomp.Params{"n": 10}, nil)
	if err != nil {
		log.Fatal(err)
	}
	out, err = rec.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("powers of two: a(10) = %g\n", out.At(10))

	mode, _ := rec.Mode("a")
	fmt.Printf("compiled mode: %s\n\n", mode)
	fmt.Println("--- compilation report ---")
	fmt.Print(rec.Report())
}
