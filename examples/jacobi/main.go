// Jacobi: iterative solution of Laplace's equation on a square mesh
// using the paper's section 9 semi-monolithic update. Every neighbour
// read refers to the OLD mesh (`a`), which forbids a naive in-place
// sweep — the compiler's node splitting inserts exactly the carried
// scalar and previous-row buffer a hand-coded Jacobi would use, and
// then updates the mesh in place with no whole-array copy.
package main

import (
	"fmt"
	"log"
	"math"

	"arraycomp"
)

const step = `param n;
a2 = bigupd a
  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i+1,j) + a!(i,j-1) + a!(i,j+1)) ]
   | i <- [2..n-1], j <- [2..n-1] *]`

func main() {
	n := int64(24)
	prog, err := arraycomp.Compile(step, arraycomp.Params{"n": n},
		&arraycomp.Options{Inputs: map[string]arraycomp.InputBounds{
			"a": {Lo: []int64{1, 1}, Hi: []int64{n, n}},
		}})
	if err != nil {
		log.Fatal(err)
	}
	mode, _ := prog.Mode("a2")
	fmt.Printf("jacobi step compiled %s\n", mode)
	for _, note := range prog.Notes() {
		fmt.Println("  ", note)
	}

	// Boundary conditions: top edge held at 100, the rest at 0.
	mesh := arraycomp.NewArray2(1, 1, n, n)
	for j := int64(1); j <= n; j++ {
		mesh.Set(100, 1, j)
	}

	fmt.Println("\nsweeping until the residual falls below 1e-4:")
	prev := mesh
	for sweep := 1; sweep <= 10000; sweep++ {
		next, err := prog.Run(map[string]*arraycomp.Array{"a": prev})
		if err != nil {
			log.Fatal(err)
		}
		if sweep%200 == 0 || sweep == 1 {
			fmt.Printf("  sweep %5d: center = %8.4f, residual = %.6f\n",
				sweep, next.At(n/2, n/2), residual(prev, next))
		}
		if residual(prev, next) < 1e-4 {
			fmt.Printf("converged after %d sweeps; center value %.4f\n",
				sweep, next.At(n/2, n/2))
			return
		}
		prev = next
	}
	fmt.Println("did not converge in 10000 sweeps")
}

func residual(a, b *arraycomp.Array) float64 {
	var r float64
	for i := range a.Data {
		r = math.Max(r, math.Abs(a.Data[i]-b.Data[i]))
	}
	return r
}
