// SOR / Gauss-Seidel: the paper's section 9 northwest-to-southeast
// wavefront. North and west neighbours read the NEW mesh (`a2`), south
// and east the old (`a`): the flow and anti dependence directions all
// agree with forward loops, so the compiler updates the mesh strictly
// in place — no temporaries, no copies, no thunks — and Gauss-Seidel
// converges roughly twice as fast as Jacobi on the same problem.
package main

import (
	"fmt"
	"log"
	"math"

	"arraycomp"
)

const gaussSeidel = `param n;
a2 = bigupd a
  [* [ (i,j) := 0.25 * (a2!(i-1,j) + a2!(i,j-1) + a!(i+1,j) + a!(i,j+1)) ]
   | i <- [2..n-1], j <- [2..n-1] *]`

const jacobi = `param n;
a2 = bigupd a
  [* [ (i,j) := 0.25 * (a!(i-1,j) + a!(i+1,j) + a!(i,j-1) + a!(i,j+1)) ]
   | i <- [2..n-1], j <- [2..n-1] *]`

func main() {
	n := int64(24)
	opts := &arraycomp.Options{Inputs: map[string]arraycomp.InputBounds{
		"a": {Lo: []int64{1, 1}, Hi: []int64{n, n}},
	}}
	gs, err := arraycomp.Compile(gaussSeidel, arraycomp.Params{"n": n}, opts)
	if err != nil {
		log.Fatal(err)
	}
	jc, err := arraycomp.Compile(jacobi, arraycomp.Params{"n": n}, opts)
	if err != nil {
		log.Fatal(err)
	}
	gsMode, _ := gs.Mode("a2")
	fmt.Printf("gauss-seidel compiled %s:\n", gsMode)
	for _, note := range gs.Notes() {
		fmt.Println("  ", note)
	}

	fmt.Printf("\nsweeps to reach residual 1e-4 on a %d×%d Laplace problem:\n", n, n)
	fmt.Printf("  jacobi:       %d sweeps\n", sweeps(jc, n))
	fmt.Printf("  gauss-seidel: %d sweeps\n", sweeps(gs, n))
}

func sweeps(prog *arraycomp.Program, n int64) int {
	mesh := arraycomp.NewArray2(1, 1, n, n)
	for j := int64(1); j <= n; j++ {
		mesh.Set(100, 1, j)
	}
	prev := mesh
	for sweep := 1; sweep <= 20000; sweep++ {
		next, err := prog.Run(map[string]*arraycomp.Array{"a": prev})
		if err != nil {
			log.Fatal(err)
		}
		if residual(prev, next) < 1e-4 {
			return sweep
		}
		prev = next
	}
	return -1
}

func residual(a, b *arraycomp.Array) float64 {
	var r float64
	for i := range a.Data {
		r = math.Max(r, math.Abs(a.Data[i]-b.Data[i]))
	}
	return r
}
