// Livermore Loops Kernel 23 (2-D implicit hydrodynamics fragment): the
// paper notes it shares the Gauss-Seidel northwest-to-southeast
// wavefront structure, so the compiled update runs fully in place.
// This example measures the compiled step against the thunked baseline
// on the same inputs.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"arraycomp"
)

const kernel23 = `param n;
za2 = bigupd za
  [* [ (j,k) := za!(j,k) + 0.175 *
         (zr!(j,k) * (za2!(j-1,k) - za!(j,k)) +
          zb!(j,k) * (za2!(j,k-1) - za!(j,k)) +
          zu!(j,k) * (za!(j+1,k)  - za!(j,k)) +
          zv!(j,k) * (za!(j,k+1)  - za!(j,k))) ]
   | j <- [2..n-1], k <- [2..n-1] *]`

func mesh(n int64, rng *rand.Rand) *arraycomp.Array {
	a := arraycomp.NewArray2(1, 1, n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	return a
}

func main() {
	n := int64(96)
	rng := rand.New(rand.NewSource(23))
	inputs := map[string]*arraycomp.Array{
		"za": mesh(n, rng), "zr": mesh(n, rng), "zb": mesh(n, rng),
		"zu": mesh(n, rng), "zv": mesh(n, rng),
	}
	bounds := map[string]arraycomp.InputBounds{}
	for name := range inputs {
		bounds[name] = arraycomp.InputBounds{Lo: []int64{1, 1}, Hi: []int64{n, n}}
	}

	compiled, err := arraycomp.Compile(kernel23, arraycomp.Params{"n": n},
		&arraycomp.Options{Inputs: bounds})
	if err != nil {
		log.Fatal(err)
	}
	thunked, err := arraycomp.Compile(kernel23, arraycomp.Params{"n": n},
		&arraycomp.Options{Inputs: bounds, ForceThunked: true})
	if err != nil {
		log.Fatal(err)
	}
	mode, _ := compiled.Mode("za2")
	fmt.Printf("kernel 23 compiled %s over a %d×%d mesh\n\n", mode, n, n)

	const sweeps = 10
	t0 := time.Now()
	var outC *arraycomp.Array
	for s := 0; s < sweeps; s++ {
		outC, err = compiled.Run(inputs)
		if err != nil {
			log.Fatal(err)
		}
	}
	dtC := time.Since(t0)

	t0 = time.Now()
	var outT *arraycomp.Array
	for s := 0; s < sweeps; s++ {
		outT, err = thunked.Run(inputs)
		if err != nil {
			log.Fatal(err)
		}
	}
	dtT := time.Since(t0)

	if !outC.EqualWithin(outT, 1e-9) {
		log.Fatal("compiled and thunked results diverge")
	}
	fmt.Printf("compiled (in-place): %v for %d sweeps\n", dtC, sweeps)
	fmt.Printf("thunked  (general):  %v for %d sweeps\n", dtT, sweeps)
	fmt.Printf("speedup: %.1fx; za2(2,2) = %.6f (identical in both)\n",
		float64(dtT)/float64(dtC), outC.At(2, 2))
}
