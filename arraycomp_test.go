package arraycomp

import (
	"strings"
	"testing"
)

func TestQuickStart(t *testing.T) {
	prog, err := Compile(
		`a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) * 2.0 | i <- [2..n] ])`,
		Params{"n": 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(10) != 512 {
		t.Errorf("a(10) = %v, want 512", out.At(10))
	}
	mode, err := prog.Mode("a")
	if err != nil || mode != "thunkless" {
		t.Errorf("mode = %q, %v", mode, err)
	}
	if _, err := prog.Mode("zzz"); err == nil {
		t.Error("unknown definition must error")
	}
}

func TestFacadeWithInputs(t *testing.T) {
	prog, err := Compile(
		`param n; a2 = bigupd a [ i := 2.0 * a!i | i <- [1..n] ]`,
		Params{"n": 4},
		&Options{Inputs: map[string]InputBounds{"a": {Lo: []int64{1}, Hi: []int64{4}}}})
	if err != nil {
		t.Fatal(err)
	}
	in := NewArray1(1, 4)
	in.Set(5, 3)
	out, err := prog.Run(map[string]*Array{"a": in})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(3) != 10 {
		t.Errorf("a2(3) = %v", out.At(3))
	}
	if in.At(3) != 5 {
		t.Error("input mutated")
	}
	if len(prog.Definitions()) != 1 || prog.Definitions()[0] != "a2" {
		t.Errorf("definitions = %v", prog.Definitions())
	}
}

func TestFacadeForceThunked(t *testing.T) {
	prog, err := Compile(`a = array (1,n) [ i := i*i | i <- [1..n] ]`,
		Params{"n": 5}, &Options{ForceThunked: true})
	if err != nil {
		t.Fatal(err)
	}
	mode, _ := prog.Mode("a")
	if mode != "thunked" {
		t.Errorf("mode = %q", mode)
	}
	out, err := prog.Run(nil)
	if err != nil || out.At(4) != 16 {
		t.Errorf("thunked run: %v %v", out, err)
	}
}

func TestFacadeReportAndNotes(t *testing.T) {
	prog, err := Compile(`a = array (1,n) [ i := 1.0 | i <- [1..n], i mod 2 == 0 ]`,
		Params{"n": 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Report(), "empties: possible") {
		t.Errorf("report:\n%s", prog.Report())
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := Compile(`a = array (1,n) [`, Params{"n": 3}, nil); err == nil {
		t.Error("syntax error must surface")
	}
	if _, err := Compile(`a = array (1,n) [ i := 1.0 | i <- [1..n] ]`, nil, nil); err == nil {
		t.Error("unbound parameter must surface")
	}
}

func TestArrayConstructors(t *testing.T) {
	a := NewArray1(0, 9)
	if a.B.Size() != 10 {
		t.Error("NewArray1 wrong")
	}
	b := NewArray2(1, 1, 3, 3)
	if b.B.Size() != 9 {
		t.Error("NewArray2 wrong")
	}
}

func TestFacadeNotes(t *testing.T) {
	prog, err := Compile(`param n;
	a2 = bigupd a [ i := a!(i-1) | i <- [2..n] ]`,
		Params{"n": 6},
		&Options{Inputs: map[string]InputBounds{"a": {Lo: []int64{1}, Hi: []int64{6}}}})
	if err != nil {
		t.Fatal(err)
	}
	notes := prog.Notes()
	found := false
	for _, n := range notes {
		if strings.Contains(n, "in-place") || strings.Contains(n, "anti") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes = %v", notes)
	}
}
