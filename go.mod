module arraycomp

go 1.24
