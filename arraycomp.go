// Package arraycomp is an optimizing compiler and runtime for
// Haskell-style array comprehensions, reproducing Anderson & Hudak,
// "Compilation of Haskell Array Comprehensions for Scientific
// Computing" (PLDI 1990).
//
// Programs are written in the paper's surface syntax — monolithic
// `array` comprehensions (including nested `[* … *]` comprehensions),
// `accumArray`, recursive `letrec*` bindings, and semi-monolithic
// `bigupd` updates — and compiled, per binding of their scalar
// parameters, through subscript analysis (GCD, Banerjee, and exact
// dependence tests), direction-vector dependence graphs, static
// thunkless scheduling, and node splitting for in-place updates.
// Definitions that defeat static scheduling fall back to the general
// non-strict thunked representation.
//
// Quick start:
//
//	prog, err := arraycomp.Compile(
//	    `a = array (1,n) ([ 1 := 1.0 ] ++ [ i := a!(i-1) * 2.0 | i <- [2..n] ])`,
//	    arraycomp.Params{"n": 10}, nil)
//	if err != nil { … }
//	out, err := prog.Run(nil)
//	fmt.Println(out.At(10)) // 512
package arraycomp

import (
	"fmt"

	"arraycomp/internal/analysis"
	"arraycomp/internal/core"
	"arraycomp/internal/runtime"
)

// Params binds the scalar parameters (array extents such as n, m) a
// program is compiled against; the paper's analysis assumes statically
// known loop bounds, so compilation is per binding.
type Params = map[string]int64

// Array is a strict, fully evaluated array of float64 elements with
// Haskell-style inclusive bounds.
type Array = runtime.Strict

// Bounds describes an array's index space.
type Bounds = runtime.Bounds

// NewArray1 allocates a zero-filled 1-D array with inclusive bounds
// [lo..hi].
func NewArray1(lo, hi int64) *Array {
	return runtime.NewStrict(runtime.NewBounds1(lo, hi))
}

// NewArray2 allocates a zero-filled 2-D array with inclusive bounds
// [lo1..hi1]×[lo2..hi2].
func NewArray2(lo1, lo2, hi1, hi2 int64) *Array {
	return runtime.NewStrict(runtime.NewBounds2(lo1, lo2, hi1, hi2))
}

// InputBounds declares the index space of a free input array (one the
// program reads but does not define).
type InputBounds struct {
	Lo, Hi []int64
}

// Options tunes compilation.
type Options struct {
	// ForceThunked compiles every definition with the general
	// non-strict thunked representation — the naive baseline the
	// paper's optimizations are measured against.
	ForceThunked bool
	// ExactBudget bounds each exact dependence test's search
	// (0 selects a generous default).
	ExactBudget int
	// Parallel executes dependence-free loops concurrently across CPUs
	// (the paper's section 10 vectorization/parallelization extension).
	Parallel bool
	// Inputs declares bounds for free input arrays.
	Inputs map[string]InputBounds
}

// Program is a compiled array program, runnable any number of times.
type Program struct {
	p *core.Program
}

// Compile parses and compiles an array program under a parameter
// binding. See the package example and the examples/ directory for the
// surface syntax.
func Compile(src string, params Params, opts *Options) (*Program, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	copts := core.Options{
		ExactBudget:  o.ExactBudget,
		ForceThunked: o.ForceThunked,
		Parallel:     o.Parallel,
	}
	if len(o.Inputs) > 0 {
		copts.InputBounds = map[string]analysis.ArrayBounds{}
		for name, b := range o.Inputs {
			copts.InputBounds[name] = analysis.ArrayBounds{Lo: b.Lo, Hi: b.Hi}
		}
	}
	p, err := core.Compile(src, params, copts)
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}

// Run executes the program. inputs supplies every free input array;
// they are never mutated. The result is the program's result array.
func (p *Program) Run(inputs map[string]*Array) (*Array, error) {
	return p.p.Run(inputs)
}

// Report returns a human-readable compilation report: per definition
// the dependence graph, the collision and empties verdicts, the chosen
// schedule, and the runtime checks that could not be elided.
func (p *Program) Report() string {
	return p.p.Report()
}

// Mode reports how the named definition was compiled: "thunkless",
// "in-place", "thunked", or "thunked-group".
func (p *Program) Mode(def string) (string, error) {
	cd, ok := p.p.Defs[def]
	if !ok {
		return "", fmt.Errorf("arraycomp: no definition %q", def)
	}
	return cd.Mode(), nil
}

// Definitions lists the program's array definitions in evaluation
// order.
func (p *Program) Definitions() []string {
	return append([]string(nil), p.p.Order...)
}

// Notes returns the compilation decisions (schedule fallbacks, node
// splitting tiers, check elisions) in human-readable form.
func (p *Program) Notes() []string {
	return append([]string(nil), p.p.Notes...)
}
